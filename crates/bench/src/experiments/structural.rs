//! Structural experiments: Table 1/2 and Figures 1–4, 12 — closed-form
//! sweeps, measured topology properties, bisection verification and the
//! expansion/buy-ahead economics.

use super::titled;
use crate::cache::TopoKey;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use crate::{fmt_f, fmt_opt};
use abccc::AbcccParams;
use dcn_baselines::{BCubeParams, DCellParams, FatTreeParams};
use dcn_metrics::{expansion, CostModel, ExpansionLedger};
use rand::SeedableRng;
use serde::Serialize;

fn e(err: impl std::fmt::Display) -> String {
    err.to_string()
}

// ---------------------------------------------------------------- Table 1

/// Closed-form diameter for a configuration, where one exists — delegated
/// to the family registry (DCell's closed form is only a bound, fat-tree
/// servers never forward, random graphs have no formula).
fn diameter_formula(key: &TopoKey) -> Result<Option<u64>, String> {
    key.descriptor().diameter_formula(key.params()).map_err(e)
}

#[derive(Serialize)]
struct PropsRow {
    name: String,
    servers: u64,
    switches: u64,
    wires: u64,
    ports: u32,
    diameter_formula: Option<u64>,
    diameter_bfs: Option<u32>,
    apl: Option<f64>,
    bisection: Option<u64>,
}

/// **Table 1** — structural comparison at representative configurations.
pub struct Table1Properties;

impl Table1Properties {
    fn grid(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![
                TopoKey::abccc(4, 1, 2),
                TopoKey::bccc(4, 1),
                TopoKey::bcube(4, 1),
                TopoKey::ghc(2, 3),
            ],
            Preset::Paper => vec![
                TopoKey::abccc(4, 2, 2),
                TopoKey::abccc(4, 2, 3),
                TopoKey::abccc(4, 2, 4),
                TopoKey::bccc(4, 2),
                TopoKey::bcube(4, 2),
                TopoKey::dcell(4, 1),
                TopoKey::fattree(8),
                TopoKey::ghc(4, 3),
            ],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push(TopoKey::abccc(4, 3, 3));
                g.push(TopoKey::bcube(4, 3));
                g
            }
        }
    }
}

impl Experiment for Table1Properties {
    fn name(&self) -> &'static str {
        "table1_properties"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }
    fn summary(&self) -> &'static str {
        "structural properties: servers, switches, wires, diameter, APL, bisection"
    }
    fn title(&self, preset: Preset) -> String {
        titled("Table 1: structural properties (n=4-class configs)", preset)
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "servers",
            "switches",
            "wires",
            "ports/srv",
            "D(formula)",
            "D(BFS)",
            "APL",
            "bisection",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec!["(all closed-form diameters verified against BFS)".into()]
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![(
            "class",
            format!("n=4 configs ({} structures)", Self::grid(preset).len()),
        )]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec::on(key.label(), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let stats = t.stats_full();
        let formula = diameter_formula(key)?;
        // Consistency guard: where a closed form exists it must equal BFS.
        if let (Some(f), Some(b)) = (formula, stats.diameter_server_hops) {
            if f != u64::from(b) {
                return Err(format!("{}: formula diameter {f} vs BFS {b}", stats.name));
            }
        }
        let row = PropsRow {
            name: stats.name.clone(),
            servers: stats.servers,
            switches: stats.switches,
            wires: stats.wires,
            ports: stats.max_server_ports,
            diameter_formula: formula,
            diameter_bfs: stats.diameter_server_hops,
            apl: stats.avg_path_length,
            bisection: Some(t.exact_bisection()),
        };
        Ok(vec![Row::one(
            vec![
                row.name.clone(),
                row.servers.to_string(),
                row.switches.to_string(),
                row.wires.to_string(),
                row.ports.to_string(),
                fmt_opt(row.diameter_formula),
                fmt_opt(row.diameter_bfs),
                row.apl.map_or("—".into(), |v| fmt_f(v, 2)),
                fmt_opt(row.bisection),
            ],
            &row,
        )])
    }
}

// ---------------------------------------------------------------- Table 2

/// **Table 2** — CAPEX at comparable scale under the default cost model.
pub struct Table2Capex;

impl Table2Capex {
    fn grid(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![
                TopoKey::abccc(4, 1, 2),
                TopoKey::bccc(4, 1),
                TopoKey::bcube(4, 1),
            ],
            Preset::Paper => vec![
                TopoKey::abccc(4, 3, 2),
                TopoKey::abccc(4, 3, 3),
                TopoKey::abccc(4, 3, 5),
                TopoKey::bccc(4, 3),
                TopoKey::bcube(4, 4),
                TopoKey::dcell(5, 2),
                TopoKey::fattree(16),
                TopoKey::ghc(4, 5),
            ],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push(TopoKey::abccc(6, 3, 2));
                g.push(TopoKey::fattree(24));
                g
            }
        }
    }
}

impl Experiment for Table2Capex {
    fn name(&self) -> &'static str {
        "table2_capex"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 2"
    }
    fn summary(&self) -> &'static str {
        "capital expenditure at comparable scale (switch/NIC/cable spend per server)"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Table 2: CAPEX at comparable scale (default cost model, USD)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "servers",
            "switch $",
            "NIC $",
            "cable $",
            "total $",
            "$/server",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        let cost = CostModel::default();
        vec![format!(
            "(cost model: NIC port ${}, cable ${}, switch tiers {:?})",
            cost.nic_port, cost.cable, cost.switch_port_tiers
        )]
    }
    fn manifest_params(&self, _preset: Preset) -> Vec<(&'static str, String)> {
        vec![("scale", "~0.4k-1k servers".into())]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec::on(key.label(), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let capex = CostModel::default().capex(t.stats_quick());
        Ok(vec![Row::one(
            vec![
                capex.name.clone(),
                capex.servers.to_string(),
                fmt_f(capex.switches_usd, 0),
                fmt_f(capex.nics_usd, 0),
                fmt_f(capex.cables_usd, 0),
                fmt_f(capex.total(), 0),
                fmt_f(capex.per_server(), 2),
            ],
            &capex,
        )])
    }
}

// ---------------------------------------------------------------- Figure 1

#[derive(Serialize)]
struct SeriesPoint {
    series: String,
    k: u32,
    diameter: u64,
}

fn k_range(preset: Preset) -> std::ops::RangeInclusive<u32> {
    match preset {
        Preset::Tiny => 1..=2,
        Preset::Paper => 1..=6,
        Preset::Scale => 1..=8,
    }
}

/// **Figure 1** — diameter vs order `k` (closed forms).
pub struct Fig1Diameter;

impl Experiment for Fig1Diameter {
    fn name(&self) -> &'static str {
        "fig1_diameter"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 1"
    }
    fn summary(&self) -> &'static str {
        "diameter vs order k: ABCCC h∈{2..5} against BCube and the DCell bound"
    }
    fn title(&self, preset: Preset) -> String {
        titled("Figure 1: diameter (server hops) vs order k, n = 4", preset)
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "k",
            "ABCCC h=2 (BCCC)",
            "ABCCC h=3",
            "ABCCC h=4",
            "ABCCC h=5",
            "BCube",
            "DCell bound",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec!["(shape: BCube k+1 ≤ ABCCC (k+1)+m ≤ BCCC 2(k+1); larger h shrinks m)".into()]
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let r = k_range(preset);
        vec![
            ("n", "4".into()),
            ("k", format!("{}..={}", r.start(), r.end())),
            ("h", "2..=5".into()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        k_range(preset)
            .map(|k| PointSpec::pure(format!("k={k}")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let n = 4;
        let k = *k_range(ctx.preset).start() + ctx.index as u32;
        let mut cells = vec![k.to_string()];
        let mut records = Vec::new();
        for h in [2, 3, 4, 5] {
            let p = AbcccParams::new(n, k, h).map_err(e)?;
            cells.push(p.diameter().to_string());
            records.push(SeriesPoint {
                series: format!("ABCCC h={h}"),
                k,
                diameter: p.diameter(),
            });
        }
        let bc = BCubeParams::new(n, k).map_err(e)?;
        cells.push(bc.diameter().to_string());
        records.push(SeriesPoint {
            series: "BCube".into(),
            k,
            diameter: bc.diameter(),
        });
        let dc = DCellParams::new(n, k.min(3)).map(|p| p.diameter_bound());
        cells.push(dc.map_or("—".into(), |d| d.to_string()));
        Ok(vec![Row::with_records(cells, &records)])
    }
}

// ---------------------------------------------------------------- Figure 2

#[derive(Serialize)]
struct SizePoint {
    series: String,
    k: u32,
    servers: u64,
}

/// **Figure 2** — network size (servers) vs order `k`.
pub struct Fig2Size;

impl Experiment for Fig2Size {
    fn name(&self) -> &'static str {
        "fig2_size"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 2"
    }
    fn summary(&self) -> &'static str {
        "servers vs order k at fixed component classes, fat-tree cap for reference"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 2: servers vs order k, n = 4 (fat-tree p=16 for reference)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "k",
            "ABCCC h=2",
            "ABCCC h=3",
            "ABCCC h=4",
            "BCube",
            "DCell",
            "FatTree(16)",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: at equal k, ABCCC holds m× the servers of BCube on identical switches)".into(),
        ]
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let r = k_range(preset);
        vec![
            ("n", "4".into()),
            ("k", format!("{}..={}", r.start(), r.end())),
            ("h", "2..=4".into()),
            ("fattree_p", "16".into()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        k_range(preset)
            .map(|k| PointSpec::pure(format!("k={k}")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let n = 4;
        let k = *k_range(ctx.preset).start() + ctx.index as u32;
        let ft = FatTreeParams::new(16).map_err(e)?.server_count();
        let mut cells = vec![k.to_string()];
        let mut records = Vec::new();
        for h in [2, 3, 4] {
            let p = AbcccParams::new(n, k, h).map_err(e)?;
            cells.push(p.server_count().to_string());
            records.push(SizePoint {
                series: format!("ABCCC h={h}"),
                k,
                servers: p.server_count(),
            });
        }
        let bc = BCubeParams::new(n, k).map_err(e)?;
        cells.push(bc.server_count().to_string());
        records.push(SizePoint {
            series: "BCube".into(),
            k,
            servers: bc.server_count(),
        });
        let dc = DCellParams::new(n, k.min(3)).map(|p| p.server_count());
        cells.push(dc.map_or("—".into(), |s| s.to_string()));
        cells.push(ft.to_string());
        Ok(vec![Row::with_records(cells, &records)])
    }
}

// ---------------------------------------------------------------- Figure 3

#[derive(Serialize)]
struct BisectionPoint {
    name: String,
    k: u32,
    h: u32,
    bisection_formula: u64,
    per_server: f64,
    exact_small: Option<u64>,
    probe_min: Option<u64>,
}

/// **Figure 3** — bisection width across `(k, h)`, verified exactly on
/// small instances with max-flow and probed with random bipartitions.
pub struct Fig3Bisection;

impl Fig3Bisection {
    fn grid(preset: Preset) -> Vec<(u32, u32)> {
        let (ks, hs): (Vec<u32>, Vec<u32>) = match preset {
            Preset::Tiny => (vec![1], vec![2, 3]),
            Preset::Paper => ((1..=4).collect(), vec![2, 3, 4]),
            Preset::Scale => ((1..=5).collect(), vec![2, 3, 4, 5]),
        };
        ks.iter()
            .flat_map(|&k| hs.iter().map(move |&h| (k, h)))
            .collect()
    }
}

impl Experiment for Fig3Bisection {
    fn name(&self) -> &'static str {
        "fig3_bisection"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 3"
    }
    fn summary(&self) -> &'static str {
        "bisection width vs (k,h): formula, exact max-flow check, random-cut probe"
    }
    fn title(&self, preset: Preset) -> String {
        titled("Figure 3: bisection width vs (k, h), n = 4", preset)
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "config",
            "servers",
            "bisection",
            "per server",
            "max-flow check",
            "probe min",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec!["(shape: per-server bisection = 1/(2m) — rises with h at fixed k)".into()]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0xB15EC)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("n", "4".into()),
            ("grid", format!("{} (k,h) points", Self::grid(preset).len())),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(k, h)| {
                let key = TopoKey::abccc(4, k, h);
                match AbcccParams::new(4, k, h) {
                    Ok(p) if p.server_count() <= 512 => PointSpec::on(key.label(), key),
                    _ => PointSpec::pure(key.label()),
                }
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (k, h) = Fig3Bisection::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(4, k, h).map_err(e)?;
        let formula = p.bisection_width().ok_or_else(|| format!("{p}: odd n"))?;
        let per_server = p
            .bisection_per_server()
            .ok_or_else(|| format!("{p}: odd n"))?;
        // Exact verification on instances small enough for max-flow.
        let (exact, probe) = if p.server_count() <= 512 {
            let t = ctx.abccc(4, k, h)?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
            let exact = t.exact_bisection();
            let probe =
                dcn_metrics::bisection::random_balanced_probe(t.topology().network(), 4, &mut rng);
            (Some(exact), Some(probe.min_cut))
        } else {
            (None, None)
        };
        if let Some(ex) = exact {
            if ex != formula {
                return Err(format!(
                    "{p}: max-flow {ex} disagrees with formula {formula}"
                ));
            }
        }
        if let Some(pm) = probe {
            if pm < formula {
                return Err(format!(
                    "{p}: random cut {pm} beat the canonical cut {formula}"
                ));
            }
        }
        let point = BisectionPoint {
            name: p.to_string(),
            k,
            h,
            bisection_formula: formula,
            per_server,
            exact_small: exact,
            probe_min: probe,
        };
        Ok(vec![Row::one(
            vec![
                p.to_string(),
                p.server_count().to_string(),
                formula.to_string(),
                fmt_f(per_server, 4),
                exact.map_or("—".into(), |v| v.to_string()),
                probe.map_or("—".into(), |v| v.to_string()),
            ],
            &point,
        )])
    }
}

// ---------------------------------------------------------------- Figure 4

/// **Figure 4** — expansion cost: new spend vs legacy impact per family.
pub struct Fig4Expansion;

/// One expansion series: a family label and how many growth steps to take.
struct ExpFamily {
    label: &'static str,
    steps: usize,
}

impl Fig4Expansion {
    fn grid(preset: Preset) -> Vec<ExpFamily> {
        let (a, d, f) = match preset {
            Preset::Tiny => (1, 1, 1),
            Preset::Paper => (3, 2, 2),
            Preset::Scale => (4, 3, 3),
        };
        vec![
            ExpFamily {
                label: "ABCCC h=2",
                steps: a,
            },
            ExpFamily {
                label: "ABCCC h=3",
                steps: a,
            },
            ExpFamily {
                label: "BCube",
                steps: a,
            },
            ExpFamily {
                label: "DCell",
                steps: d,
            },
            ExpFamily {
                label: "FatTree",
                steps: f,
            },
        ]
    }

    fn ledgers(family: &ExpFamily) -> Result<Vec<ExpansionLedger>, String> {
        let cost = CostModel::default();
        let mut ledgers = Vec::new();
        match family.label {
            "ABCCC h=2" | "ABCCC h=3" => {
                let h = if family.label.ends_with('2') { 2 } else { 3 };
                let mut p = AbcccParams::new(4, 1, h).map_err(e)?;
                for _ in 0..family.steps {
                    ledgers.push(expansion::abccc_expansion(p, &cost).map_err(e)?);
                    p = p.grown().map_err(e)?;
                }
            }
            "BCube" => {
                let mut p = BCubeParams::new(4, 1).map_err(e)?;
                for _ in 0..family.steps {
                    ledgers.push(expansion::bcube_expansion(p, &cost).map_err(e)?);
                    p = BCubeParams::new(4, p.k() + 1).map_err(e)?;
                }
            }
            "DCell" => {
                let mut p = DCellParams::new(4, 0).map_err(e)?;
                for _ in 0..family.steps {
                    ledgers.push(expansion::dcell_expansion(p.clone(), &cost).map_err(e)?);
                    p = DCellParams::new(4, p.k() + 1).map_err(e)?;
                }
            }
            "FatTree" => {
                let mut from = 4u32;
                for _ in 0..family.steps {
                    let to = from + 2;
                    ledgers.push(
                        expansion::fattree_expansion(
                            FatTreeParams::new(from).map_err(e)?,
                            to,
                            &cost,
                        )
                        .map_err(e)?,
                    );
                    from = to;
                }
            }
            other => return Err(format!("unknown expansion family {other}")),
        }
        Ok(ledgers)
    }
}

impl Experiment for Fig4Expansion {
    fn name(&self) -> &'static str {
        "fig4_expansion"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 4"
    }
    fn summary(&self) -> &'static str {
        "expansion steps: new capex vs legacy hardware touched, per family"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 4: expansion steps — new spend vs legacy impact",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "step",
            "servers",
            "new capex $",
            "legacy NICs added",
            "legacy cables rewired",
            "legacy switches discarded",
            "legacy touch",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: ABCCC/BCCC rows show zero legacy impact; BCube/DCell touch 100% of servers)"
                .into(),
        ]
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let g = Self::grid(preset);
        vec![
            ("n", "4".into()),
            (
                "steps",
                format!(
                    "{} ({} for DCell, {} for fat-tree)",
                    g[0].steps, g[3].steps, g[4].steps
                ),
            ),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|f| PointSpec::pure(f.label))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let family = &Fig4Expansion::grid(ctx.preset)[ctx.index];
        let ledgers = Fig4Expansion::ledgers(family)?;
        Ok(ledgers
            .iter()
            .map(|l| {
                Row::one(
                    vec![
                        l.name.clone(),
                        format!("{}→{}", l.from_servers, l.to_servers),
                        fmt_f(l.new_capex_usd, 0),
                        l.legacy_nics_added.to_string(),
                        l.legacy_cables_rewired.to_string(),
                        l.legacy_switches_discarded.to_string(),
                        if l.legacy_untouched() {
                            "none".into()
                        } else if l.legacy_switches_discarded > 0 {
                            "fabric rebuilt".into()
                        } else {
                            format!("{:.0}% of servers", 100.0 * l.legacy_touch_fraction())
                        },
                    ],
                    l,
                )
            })
            .collect())
    }
}

// ---------------------------------------------------------------- Figure 12

#[derive(Serialize)]
struct Strategy {
    initial_radix: u32,
    upfront_crossbar_usd: f64,
    total_crossbar_usd: f64,
    crossbars_discarded: u64,
    groups_recabled: u64,
}

/// **Figure 12** — crossbar radix buy-ahead economics under growth.
pub struct Fig12Headroom;

impl Fig12Headroom {
    fn radixes(preset: Preset) -> Vec<u32> {
        match preset {
            Preset::Tiny => vec![2, 4],
            Preset::Paper => vec![2, 4, 6, 8],
            Preset::Scale => vec![2, 4, 6, 8, 10],
        }
    }
    fn k1(preset: Preset) -> u32 {
        match preset {
            Preset::Tiny => 3,
            Preset::Paper => 5,
            Preset::Scale => 6,
        }
    }
}

impl Experiment for Fig12Headroom {
    fn name(&self) -> &'static str {
        "fig12_headroom"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 12"
    }
    fn summary(&self) -> &'static str {
        "crossbar buy-ahead: upfront radix headroom vs forced replacement cost"
    }
    fn title(&self, preset: Preset) -> String {
        let k1 = Self::k1(preset);
        titled(
            &format!(
                "Figure 12: crossbar radix buy-ahead, ABCCC(4,k,2) grown k=1→{k1} (m: 2→{})",
                k1 + 1
            ),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "initial radix c",
            "upfront crossbar $",
            "total crossbar $",
            "crossbars discarded",
            "groups recabled",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: buying m_final-port crossbars up front costs pennies more per group".into(),
            " and preserves the zero-touch expansion; under-buying forces a fabric-wide".into(),
            " crossbar replacement — the BCube-style legacy cost ABCCC is built to avoid)".into(),
        ]
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("n", "4".into()),
            ("h", "2".into()),
            ("k", format!("1..={}", Self::k1(preset))),
            (
                "initial_radix",
                Self::radixes(preset)
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::radixes(preset)
            .into_iter()
            .map(|c| PointSpec::pure(format!("c0={c}")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let cost = CostModel::default();
        let (n, k0, k1) = (4u32, 1u32, Self::k1(ctx.preset));
        let c0 = Self::radixes(ctx.preset)[ctx.index];
        let m_final = AbcccParams::new(n, k1, 2).map_err(e)?.group_size();
        let mut radix = c0;
        let mut total = 0.0f64;
        let mut upfront = 0.0f64;
        let mut discarded = 0u64;
        let mut recabled = 0u64;
        for k in k0..=k1 {
            let p = AbcccParams::new(n, k, 2).map_err(e)?;
            let m = p.group_size();
            let labels = p.label_space();
            let prev_labels = if k == k0 {
                0
            } else {
                AbcccParams::new(n, k - 1, 2).map_err(e)?.label_space()
            };
            if m > radix {
                // Outgrew the installed crossbars: replace them all.
                discarded += prev_labels;
                recabled += prev_labels;
                total += cost.switch_price(m_final as usize) * prev_labels as f64;
                radix = m_final; // replacement buys full headroom
            }
            // New labels get crossbars at the current purchase radix.
            let new_labels = labels - prev_labels;
            let buy = cost.switch_price(radix.max(m) as usize) * new_labels as f64;
            total += buy;
            if k == k0 {
                upfront = buy;
            }
        }
        let row = Strategy {
            initial_radix: c0,
            upfront_crossbar_usd: upfront,
            total_crossbar_usd: total,
            crossbars_discarded: discarded,
            groups_recabled: recabled,
        };
        Ok(vec![Row::one(
            vec![
                c0.to_string(),
                fmt_f(upfront, 0),
                fmt_f(total, 0),
                discarded.to_string(),
                recabled.to_string(),
            ],
            &row,
        )])
    }
}
