//! Packet-level experiments: Figures 11 and 15 — latency/loss under a
//! permutation workload, and the incast ablation (open loop vs AIMD).

use super::titled;
use crate::cache::TopoKey;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use dcn_sim::{AimdConfig, FlowSpec, PacketSim, PacketSimConfig, PacketSimReport};
use dcn_workloads::traffic;
use rand::SeedableRng;
use serde::Serialize;

// ---------------------------------------------------------------- Figure 11

#[derive(Serialize)]
struct LatencyRow {
    report: PacketSimReport,
    flows: usize,
}

/// **Figure 11** — packet-level latency distribution and loss.
pub struct Fig11Latency;

impl Fig11Latency {
    fn grid(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![TopoKey::abccc(4, 1, 2), TopoKey::bcube(4, 1)],
            Preset::Paper => vec![
                TopoKey::abccc(4, 2, 2),
                TopoKey::abccc(4, 2, 3),
                TopoKey::bcube(4, 2),
                TopoKey::fattree(8),
                TopoKey::dcell(4, 1),
            ],
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push(TopoKey::abccc(4, 2, 4));
                g.push(TopoKey::fattree(16));
                g
            }
        }
    }
}

impl Experiment for Fig11Latency {
    fn name(&self) -> &'static str {
        "fig11_latency"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 11"
    }
    fn summary(&self) -> &'static str {
        "packet-level latency percentiles, loss and goodput under bulk permutation"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 11: packet-level latency & loss (64 bulk flows × 300 pkts, 1500 B, 64-pkt buffers)",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "flows",
            "mean µs",
            "p50 µs",
            "p99 µs",
            "loss",
            "agg goodput Gbps",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: latency orders by mean path length — BCube < ABCCC h=3 < h=2;".into(),
            " the packet-level ranking matches the flow-level one of Figure 6)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x1A7)
    }
    // The historical binary re-seeded every structure with the same
    // constant; keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x1A7
    }
    fn manifest_params(&self, _preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("flows", "64".into()),
            ("packets_per_flow", "300".into()),
            ("packet_bytes", "1500".into()),
            ("buffer_packets", "64".into()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec::on(key.label(), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let topo = t.topology();
        let n = topo.network().server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs = traffic::random_permutation(n, &mut rng);
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .take(64)
            .map(|&(s, d)| FlowSpec::bulk(s, d, 300))
            .collect();
        let cfg = PacketSimConfig::default();
        let report = PacketSim::new(topo, cfg)
            .run(&flows)
            .map_err(|e| format!("{}: {e}", key.label()))?;
        let cells = vec![
            report.topology.clone(),
            flows.len().to_string(),
            fmt_f(report.mean_latency_ns as f64 / 1000.0, 1),
            fmt_f(report.p50_latency_ns as f64 / 1000.0, 1),
            fmt_f(report.p99_latency_ns as f64 / 1000.0, 1),
            fmt_f(report.loss_rate(), 4),
            fmt_f(report.goodput_gbps(1), 2),
        ];
        let row = LatencyRow {
            report,
            flows: flows.len(),
        };
        Ok(vec![Row::one(cells, &row)])
    }
}

// ---------------------------------------------------------------- Figure 15

#[derive(Serialize)]
struct IncastRow {
    structure: String,
    fan_in: usize,
    open_loss: f64,
    aimd_loss: f64,
    open_p99_us: f64,
    aimd_p99_us: f64,
}

/// **Figure 15** — incast: open-loop bursts vs AIMD closed loop.
pub struct Fig15Incast;

impl Fig15Incast {
    fn structures(preset: Preset) -> Vec<TopoKey> {
        match preset {
            Preset::Tiny => vec![TopoKey::abccc(4, 1, 2)],
            Preset::Paper => vec![
                TopoKey::abccc(4, 2, 2),
                TopoKey::abccc(4, 2, 3),
                TopoKey::bcube(4, 2),
            ],
            Preset::Scale => {
                let mut g = Self::structures(Preset::Paper);
                g.push(TopoKey::abccc(4, 2, 4));
                g
            }
        }
    }

    fn fan_ins(preset: Preset) -> Vec<usize> {
        match preset {
            Preset::Tiny => vec![4, 8],
            Preset::Paper => vec![4, 8, 16, 32],
            Preset::Scale => vec![4, 8, 16, 32, 64],
        }
    }

    /// The historical row order: fan-in outer, structure inner.
    fn grid(preset: Preset) -> Vec<(usize, TopoKey)> {
        Self::fan_ins(preset)
            .into_iter()
            .flat_map(|f| Self::structures(preset).into_iter().map(move |s| (f, s)))
            .collect()
    }
}

impl Experiment for Fig15Incast {
    fn name(&self) -> &'static str {
        "fig15_incast"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 15"
    }
    fn summary(&self) -> &'static str {
        "incast fan-in sweep: open-loop loss/p99 vs AIMD closed-loop"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Figure 15: incast (100-pkt bursts, 8-pkt buffers) — open loop vs AIMD",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "fan-in",
            "open loss",
            "AIMD loss",
            "open p99 µs",
            "AIMD p99 µs",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(shape: open-loop bursts lose >90% regardless of structure; AIMD cuts loss".into(),
            " by 2–40×. Higher h helps (more sink NICs), and ABCCC beats even BCube:".into(),
            " its crossbar spreads the convergence across the sink's ports)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x1CA5)
    }
    // The historical binary re-seeded every run with the same constant;
    // keep that to preserve the published numbers exactly.
    fn point_seed(&self, _preset: Preset, _index: usize) -> u64 {
        0x1CA5
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let fan_ins = Self::fan_ins(preset)
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        vec![
            ("fan_in", fan_ins),
            ("burst_packets", "100".into()),
            ("buffer_packets", "8".into()),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(fan_in, key)| PointSpec::on(format!("{} fan-in {fan_in}", key.label()), key))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let (fan_in, key) = &grid[ctx.index];
        let fan_in = *fan_in;
        let t = ctx.topo(key)?;
        let topo = t.topology();
        let n = topo.network().server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs = traffic::many_to_one(n, fan_in, &mut rng);
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .map(|&(s, d)| FlowSpec::burst(s, d, 100, 0))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 8,
            ..Default::default()
        };
        let sim = PacketSim::new(topo, cfg);
        let err = |e: netgraph::RouteError| format!("{}: {e}", key.label());
        let open = sim.run(&flows).map_err(err)?;
        let aimd = sim.run_aimd(&flows, AimdConfig::default()).map_err(err)?;
        let row = IncastRow {
            structure: open.topology.clone(),
            fan_in,
            open_loss: open.loss_rate(),
            aimd_loss: aimd.loss_rate(),
            open_p99_us: open.p99_latency_ns as f64 / 1000.0,
            aimd_p99_us: aimd.p99_latency_ns as f64 / 1000.0,
        };
        Ok(vec![Row::one(
            vec![
                row.structure.clone(),
                row.fan_in.to_string(),
                fmt_f(row.open_loss, 4),
                fmt_f(row.aimd_loss, 4),
                fmt_f(row.open_p99_us, 0),
                fmt_f(row.aimd_p99_us, 0),
            ],
            &row,
        )])
    }
}
