//! The traffic arena: the production scenario library run through the
//! unified traffic engine (`dcn-sim`) across topology families.
//!
//! Every registered scenario — collectives, incast, a
//! storage-reconstruction storm with its *mid-flow* server fault, diurnal
//! load with a flash crowd — runs twice per family: once healthy and once
//! faulted (scenarios without their own fault timeline get a seeded link
//! fault injected at ~30% of the healthy makespan). Rows report the FCT
//! distribution (HDR p50/p99/p999) and throughput retention
//! (faulted goodput over healthy goodput).

use super::titled;
use crate::cache::TopoKey;
use crate::fmt_f;
use crate::registry::{mix_seed, Experiment, PointCtx, PointSpec, Preset, Row};
use dcn_baselines::family;
use dcn_sim::{retention, FaultInjection, FctSummary, Scenario, TrafficEngine};
use dcn_workloads::scenarios;
use netgraph::FaultScenario;
use serde::Serialize;

/// Families in the arena, display order — deterministic native routing at
/// every size, so healthy runs are reproducible by construction.
const FAMILIES: [&str; 4] = ["abccc", "bcube", "dcell", "fattree"];

#[derive(Serialize)]
struct TrafficArenaRecord {
    structure: String,
    family: String,
    scenario: String,
    fidelity: String,
    seed: u64,
    servers: u64,
    flows: usize,
    phases: u16,
    completed: usize,
    unroutable_faulted: usize,
    faults_fired: usize,
    bytes_offered: u64,
    bytes_delivered_healthy: u64,
    bytes_delivered_faulted: u64,
    makespan_ns_healthy: u64,
    makespan_ns_faulted: u64,
    goodput_gbps_healthy: f64,
    goodput_gbps_faulted: f64,
    throughput_retention: f64,
    fct_healthy: FctSummary,
    fct_faulted: FctSummary,
}

/// **Traffic arena** — production workloads × topology families on the
/// unified engine.
pub struct TrafficArena;

struct Cfg {
    target: u64,
}

impl TrafficArena {
    fn cfg(preset: Preset) -> Cfg {
        match preset {
            Preset::Tiny => Cfg { target: 16 },
            Preset::Paper => Cfg { target: 240 },
            Preset::Scale => Cfg { target: 1024 },
        }
    }

    fn grid(preset: Preset) -> Vec<TopoKey> {
        let target = Self::cfg(preset).target;
        FAMILIES
            .iter()
            .map(|name| {
                let fam = family::find(name).expect("arena family registered");
                let params = family::size_for_servers(fam, target)
                    .expect("registered families have nonempty sizing ladders");
                TopoKey::new(fam, params)
            })
            .collect()
    }

    /// The faulted counterpart: scenarios with their own timeline run as
    /// built; fault-free ones get a seeded link fault injected at ~30% of
    /// the healthy makespan, so the fault always lands mid-flow.
    fn faulted_variant(scenario: &Scenario, healthy_makespan_ns: u64, seed: u64) -> Scenario {
        if !scenario.faults.is_empty() {
            return scenario.clone();
        }
        let mut s = scenario.clone();
        s.faults.push(FaultInjection {
            at_ns: (healthy_makespan_ns * 3 / 10).max(1),
            scenario: FaultScenario::seeded(mix_seed(seed, 0xFA)).fail_links_frac(0.08),
        });
        s
    }
}

impl Experiment for TrafficArena {
    fn name(&self) -> &'static str {
        "traffic_arena"
    }
    fn paper_ref(&self) -> &'static str {
        "Traffic arena"
    }
    fn summary(&self) -> &'static str {
        "production workload scenarios (collectives, incast, storage rebuild, diurnal) on the unified traffic engine, with FCT quantiles and throughput retention under faults"
    }
    fn title(&self, preset: Preset) -> String {
        let target = Self::cfg(preset).target;
        titled(
            &format!("Traffic arena: workload scenarios × families at ~{target} servers"),
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "structure",
            "scenario",
            "fid",
            "flows",
            "done",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "gbps",
            "retain",
        ]
    }
    fn footer(&self, _preset: Preset) -> Vec<String> {
        vec![
            "(FCT quantiles from the healthy run's HDR histogram; retain = faulted goodput / healthy goodput)".into(),
            "(storage_rebuild carries its own mid-flow server fault; other scenarios get a seeded link fault at 30% of the healthy makespan)".into(),
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(0x7_AFF1C)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        let cfg = Self::cfg(preset);
        vec![
            ("target_servers", cfg.target.to_string()),
            ("scenarios", scenarios::NAMES.join(",")),
        ]
    }
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|key| PointSpec {
                label: key.label(),
                topos: vec![key],
            })
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let grid = Self::grid(ctx.preset);
        let key = &grid[ctx.index];
        let t = ctx.topo(key)?;
        let topo = t.topology();
        let servers = topo.network().server_count();
        let engine = TrafficEngine::new(topo);

        let mut rows = Vec::with_capacity(scenarios::NAMES.len());
        for (si, &name) in scenarios::NAMES.iter().enumerate() {
            let seed = mix_seed(ctx.seed, si as u64);
            let scenario = scenarios::by_name(name, servers, seed)
                .ok_or_else(|| format!("unknown scenario {name}"))?;
            let healthy = engine
                .run(&scenario.without_faults())
                .map_err(|e| e.to_string())?;
            let faulted_scenario = Self::faulted_variant(&scenario, healthy.makespan_ns, seed);
            let faulted = engine.run(&faulted_scenario).map_err(|e| e.to_string())?;
            debug_assert!(healthy.conserves_bytes() && faulted.conserves_bytes());
            let retain = retention(&healthy, &faulted);

            let record = TrafficArenaRecord {
                structure: key.label(),
                family: key.family().to_string(),
                scenario: name.to_string(),
                fidelity: healthy.fidelity.clone(),
                seed,
                servers: servers as u64,
                flows: healthy.flows,
                phases: healthy.phases,
                completed: healthy.completed,
                unroutable_faulted: faulted.unroutable,
                faults_fired: faulted.faults_fired,
                bytes_offered: healthy.bytes_offered,
                bytes_delivered_healthy: healthy.bytes_delivered,
                bytes_delivered_faulted: faulted.bytes_delivered,
                makespan_ns_healthy: healthy.makespan_ns,
                makespan_ns_faulted: faulted.makespan_ns,
                goodput_gbps_healthy: healthy.goodput_gbps,
                goodput_gbps_faulted: faulted.goodput_gbps,
                throughput_retention: retain,
                fct_healthy: healthy.fct.clone(),
                fct_faulted: faulted.fct.clone(),
            };
            rows.push(Row::one(
                vec![
                    record.structure.clone(),
                    name.to_string(),
                    record.fidelity.clone(),
                    record.flows.to_string(),
                    record.completed.to_string(),
                    fmt_f(record.fct_healthy.p50_ns as f64 / 1000.0, 1),
                    fmt_f(record.fct_healthy.p99_ns as f64 / 1000.0, 1),
                    fmt_f(record.fct_healthy.p999_ns as f64 / 1000.0, 1),
                    fmt_f(record.goodput_gbps_healthy, 2),
                    fmt_f(record.throughput_retention, 3),
                ],
                &record,
            ));
        }
        Ok(rows)
    }
}
