//! The scale-frontier experiment: what breaks first as ABCCC instances
//! grow, and what the O(V·levels) machinery buys.
//!
//! Each grid point builds one instance through the streaming CSR path and
//! measures both sides of the O(V²) wall:
//!
//! * **FIB layouts** — compile the dense `(src, dst)` table where its
//!   `4·N²` bytes are still sane, always compile the hierarchical
//!   digit-structured table, verify the two answer sampled routes
//!   bit-identically, and record the memory ratio. Past the dense
//!   feasibility cap the hierarchical walks are checked against the
//!   on-demand `DigitRouter` instead, so every row carries a verified
//!   `routes_match` flag.
//! * **Graph metrics** — sampled diameter/APL (seeded source sampling,
//!   byte-identical at any thread count) plus seeded bisection probing;
//!   on instances below the exact-feasibility cap the exact
//!   `DistanceEngine` sweep runs too and the row records the absolute
//!   APL error and whether the reported CI brackets the truth.
//!
//! Wall-clock (compile ms, lookup ns) appears only in the stdout table —
//! the JSON artifact stays byte-identical across runs and thread counts.

use super::titled;
use crate::fmt_f;
use crate::registry::{Experiment, PointCtx, PointSpec, Preset, Row};
use abccc::{Abccc, AbcccParams, DigitRouter};
use dcn_fib::FibCompiler;
use netgraph::{DistanceEngine, NodeId, Topology};
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// The deterministic slice of a frontier row.
#[derive(Serialize)]
struct FrontierRow {
    config: String,
    servers: u64,
    nodes: usize,
    links: usize,
    /// Whether the dense layout was compiled (skipped past the cap, where
    /// its quadratic table would dwarf the machine).
    dense_compiled: bool,
    /// Dense table bytes (0 when skipped).
    dense_bytes: u64,
    /// What the dense table *would* occupy: `4·N²` (the wall itself).
    dense_bytes_predicted: u64,
    hier_bytes: u64,
    /// `dense_bytes_predicted / hier_bytes` — how far past the wall the
    /// hierarchical layout reaches.
    bytes_ratio: f64,
    lookup_pairs: usize,
    /// Hier walks verified bit-identical against the dense table (when
    /// compiled) or the on-demand digit router (when not).
    routes_match: bool,
    total_link_hops: u64,
    samples: usize,
    sampled_diameter_lb: u32,
    sampled_apl: f64,
    sampled_apl_ci95: f64,
    bisection_trials: usize,
    sampled_bisection_cut: u64,
    /// Whether the exact all-pairs sweep ran (skipped past the cap).
    exact_feasible: bool,
    exact_diameter: u32,
    exact_apl: f64,
    apl_abs_err: f64,
    apl_within_ci: bool,
}

/// Dense-vs-hier FIB and exact-vs-sampled metrics across the size sweep.
pub struct ScaleFrontier;

impl ScaleFrontier {
    fn grid(preset: Preset) -> Vec<(u32, u32, u32)> {
        match preset {
            // Everything exact-feasible: the cross-validation points.
            Preset::Tiny => vec![(2, 2, 2), (3, 2, 2)],
            // Up to ~1.5k servers: dense still compiles, exact still runs.
            Preset::Paper => vec![(3, 2, 2), (4, 2, 2), (4, 3, 2), (8, 2, 2)],
            // Past the wall: 131 072 servers — hier + sampled only.
            Preset::Scale => {
                let mut g = Self::grid(Preset::Paper);
                g.push((16, 3, 3));
                g
            }
        }
    }

    /// Dense layout compiled only below this server count: the quadratic
    /// table crosses 64 MiB right above it and tens of GiB at the scale
    /// point.
    const DENSE_CAP: u64 = 4096;
    /// Exact all-pairs sweep only below this server count.
    const EXACT_CAP: u64 = 2048;
    const SAMPLES: usize = 64;
    const BISECTION_TRIALS: usize = 4;

    fn lookup_pairs(preset: Preset) -> usize {
        match preset {
            Preset::Tiny => 512,
            Preset::Paper | Preset::Scale => 4096,
        }
    }
}

impl Experiment for ScaleFrontier {
    fn name(&self) -> &'static str {
        "scale_frontier"
    }
    fn paper_ref(&self) -> &'static str {
        "Scale frontier"
    }
    fn summary(&self) -> &'static str {
        "dense vs hierarchical FIB memory/time and exact vs sampled metrics across the size sweep"
    }
    fn title(&self, preset: Preset) -> String {
        titled(
            "Scale frontier: dense vs hier FIB, exact vs sampled metrics",
            preset,
        )
    }
    fn headers(&self) -> &'static [&'static str] {
        &[
            "config",
            "servers",
            "dense MiB",
            "hier KiB",
            "ratio",
            "dense ms",
            "hier ms",
            "dense ns/lkp",
            "hier ns/lkp",
            "D̂ (lb) / D",
            "APL̂ ± ci (err)",
        ]
    }
    fn base_seed(&self) -> Option<u64> {
        Some(33)
    }
    fn manifest_params(&self, preset: Preset) -> Vec<(&'static str, String)> {
        vec![
            ("dense_cap", Self::DENSE_CAP.to_string()),
            ("exact_cap", Self::EXACT_CAP.to_string()),
            ("samples", Self::SAMPLES.to_string()),
            ("bisection_trials", Self::BISECTION_TRIALS.to_string()),
            ("lookup_pairs", Self::lookup_pairs(preset).to_string()),
        ]
    }
    // Fresh topologies per point: streamed construction is part of what the
    // point demonstrates, and the scale instance should drop immediately.
    fn points(&self, preset: Preset) -> Vec<PointSpec> {
        Self::grid(preset)
            .into_iter()
            .map(|(n, k, h)| PointSpec::pure(format!("ABCCC({n},{k},{h})")))
            .collect()
    }
    fn run_point(&self, ctx: &PointCtx<'_>) -> Result<Vec<Row>, String> {
        let (n, k, h) = Self::grid(ctx.preset)[ctx.index];
        let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
        let topo = Abccc::new(p).map_err(|e| format!("{p}: {e}"))?;
        let net = topo.network();
        let servers = p.server_count();

        // --- FIB layouts -------------------------------------------------
        let t0 = Instant::now();
        let hier = FibCompiler::shortest()
            .compile_hier(&topo)
            .map_err(|e| format!("{p}: {e}"))?;
        let hier_ms = t0.elapsed().as_secs_f64() * 1e3;

        let dense = if servers <= Self::DENSE_CAP {
            let t1 = Instant::now();
            let fib = FibCompiler::shortest()
                .compile(&topo)
                .map_err(|e| format!("{p}: {e}"))?;
            Some((fib, t1.elapsed().as_secs_f64() * 1e3))
        } else {
            None
        };
        let dense_bytes_predicted = servers * servers * 4;

        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let pairs: Vec<(NodeId, NodeId)> = (0..Self::lookup_pairs(ctx.preset))
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..servers) as u32),
                    NodeId(rng.gen_range(0..servers) as u32),
                )
            })
            .collect();

        // Hier lookups: total hops is deterministic, the ns/lookup is not.
        let t2 = Instant::now();
        let mut total_link_hops = 0u64;
        let mut buf = Vec::with_capacity(32);
        for &(s, d) in &pairs {
            buf.clear();
            hier.walk_into(net, s, d, &mut buf);
            total_link_hops += (buf.len() as u64).saturating_sub(1);
        }
        let hier_ns = t2.elapsed().as_nanos() as f64 / pairs.len() as f64;

        // Verify hier against dense where dense exists, else against the
        // on-demand router — every row carries a checked equivalence flag.
        let (routes_match, dense_ns) = match &dense {
            Some((fib, _)) => {
                let t3 = Instant::now();
                for &(s, d) in &pairs {
                    buf.clear();
                    fib.walk_into(net, s, d, &mut buf);
                }
                let dense_ns = t3.elapsed().as_nanos() as f64 / pairs.len() as f64;
                let ok = pairs
                    .iter()
                    .all(|&(s, d)| fib.route(net, s, d) == hier.route(net, s, d));
                (ok, Some(dense_ns))
            }
            None => {
                let digit = DigitRouter::shortest();
                let ok = pairs.iter().all(|&(s, d)| {
                    digit
                        .route_ids(&p, s, d)
                        .map(|r| r == hier.route(net, s, d))
                        .unwrap_or(false)
                });
                (ok, None)
            }
        };
        if !routes_match {
            return Err(format!("{p}: hier FIB diverged from the reference routes"));
        }

        // --- Metrics -----------------------------------------------------
        let sampled = netgraph::sample::sampled_server_metrics(net, Self::SAMPLES, ctx.seed)
            .ok_or_else(|| format!("{p}: sampled metrics unavailable"))?;
        let bisection = netgraph::sample::sampled_bisection(net, Self::BISECTION_TRIALS, ctx.seed)
            .ok_or_else(|| format!("{p}: sampled bisection unavailable"))?;

        let exact = if servers <= Self::EXACT_CAP {
            Some(
                DistanceEngine::new(net)
                    .all_pairs()
                    .ok_or_else(|| format!("{p}: disconnected"))?,
            )
        } else {
            None
        };
        let (exact_diameter, exact_apl, apl_abs_err, apl_within_ci) = match &exact {
            Some(e) => (
                e.diameter,
                e.avg_path_length,
                (sampled.apl.mean - e.avg_path_length).abs(),
                sampled.apl.brackets(e.avg_path_length),
            ),
            None => (0, 0.0, 0.0, true),
        };
        if exact.is_some() {
            if sampled.diameter_lb > exact_diameter {
                return Err(format!(
                    "{p}: sampled diameter {} exceeds exact {exact_diameter}",
                    sampled.diameter_lb
                ));
            }
            if !apl_within_ci {
                return Err(format!(
                    "{p}: exact APL {exact_apl} outside sampled CI {} ± {}",
                    sampled.apl.mean, sampled.apl.ci95
                ));
            }
        }

        let hier_bytes = hier.bytes() as u64;
        let row = FrontierRow {
            config: p.to_string(),
            servers,
            nodes: net.node_count(),
            links: net.link_count(),
            dense_compiled: dense.is_some(),
            dense_bytes: dense.as_ref().map_or(0, |(f, _)| f.bytes() as u64),
            dense_bytes_predicted,
            hier_bytes,
            bytes_ratio: dense_bytes_predicted as f64 / hier_bytes as f64,
            lookup_pairs: pairs.len(),
            routes_match,
            total_link_hops,
            samples: sampled.apl.samples,
            sampled_diameter_lb: sampled.diameter_lb,
            sampled_apl: sampled.apl.mean,
            sampled_apl_ci95: sampled.apl.ci95,
            bisection_trials: bisection.trials,
            sampled_bisection_cut: bisection.min_cut,
            exact_feasible: exact.is_some(),
            exact_diameter,
            exact_apl,
            apl_abs_err,
            apl_within_ci,
        };
        let diameter_cell = match &exact {
            Some(e) => format!("{} / {}", row.sampled_diameter_lb, e.diameter),
            None => format!("{} / -", row.sampled_diameter_lb),
        };
        let apl_cell = match &exact {
            Some(_) => format!(
                "{} ± {} ({})",
                fmt_f(row.sampled_apl, 3),
                fmt_f(row.sampled_apl_ci95, 3),
                fmt_f(row.apl_abs_err, 3)
            ),
            None => format!(
                "{} ± {}",
                fmt_f(row.sampled_apl, 3),
                fmt_f(row.sampled_apl_ci95, 3)
            ),
        };
        Ok(vec![Row::one(
            vec![
                row.config.clone(),
                row.servers.to_string(),
                fmt_f(row.dense_bytes_predicted as f64 / (1024.0 * 1024.0), 1),
                fmt_f(row.hier_bytes as f64 / 1024.0, 1),
                fmt_f(row.bytes_ratio, 0),
                dense
                    .as_ref()
                    .map_or("-".to_string(), |(_, ms)| fmt_f(*ms, 2)),
                fmt_f(hier_ms, 2),
                dense_ns.map_or("-".to_string(), |ns| fmt_f(ns, 0)),
                fmt_f(hier_ns, 0),
                diameter_cell,
                apl_cell,
            ],
            &row,
        )])
    }
}
