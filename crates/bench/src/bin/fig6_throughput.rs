//! **Figure 6** — aggregate throughput under max-min fair allocation
//! (flow-level simulation) for three traffic patterns: random permutation,
//! bisection stress, and uniform random; per structure at comparable
//! scale.

fn main() {
    abccc_bench::registry::shim_main("fig6_throughput");
}
