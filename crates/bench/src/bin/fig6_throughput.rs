//! **Figure 6** — aggregate throughput under max-min fair allocation
//! (flow-level simulation) for three traffic patterns: random permutation,
//! bisection stress, and uniform random; per structure at comparable
//! scale.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::*;
use dcn_workloads::traffic;
use flowsim::{FlowSim, FlowSimReport};
use netgraph::Topology;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    pattern: String,
    report: FlowSimReport,
}

fn run_patterns<T: Topology>(topo: &T, out: &mut Vec<Row>) {
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7_86);
    let sim = FlowSim::new(topo);
    let patterns: Vec<(&str, Vec<(netgraph::NodeId, netgraph::NodeId)>)> = vec![
        ("permutation", traffic::random_permutation(n, &mut rng)),
        ("bisection", traffic::bisection_pairs(n, &mut rng)),
        ("uniform-2n", traffic::uniform_random(n, 2 * n, &mut rng)),
    ];
    for (name, pairs) in patterns {
        let mut report = sim.run(&pairs).expect("fault-free run");
        report.rates.clear(); // keep JSON artifacts small
        out.push(Row {
            pattern: name.to_string(),
            report,
        });
    }
}

fn main() {
    let mut bench = BenchRun::start("fig6_throughput");
    bench
        .param("patterns", "permutation bisection uniform-2n")
        .seed(0x7_86);
    let mut rows: Vec<Row> = Vec::new();
    run_patterns(
        &Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build"),
        &mut rows,
    ); // 192 servers
    run_patterns(
        &Abccc::new(AbcccParams::new(4, 2, 3).expect("params")).expect("build"),
        &mut rows,
    ); // 128 servers
    run_patterns(
        &Abccc::new(AbcccParams::new(4, 2, 4).expect("params")).expect("build"),
        &mut rows,
    ); // 128 servers (BCube endpoint)
    run_patterns(
        &BCube::new(BCubeParams::new(4, 2).expect("params")).expect("build"),
        &mut rows,
    ); // 64 servers
    run_patterns(
        &DCell::new(DCellParams::new(4, 1).expect("params")).expect("build"),
        &mut rows,
    ); // 20 servers
    run_patterns(
        &FatTree::new(FatTreeParams::new(8).expect("params")).expect("build"),
        &mut rows,
    ); // 128 servers

    let mut table = Table::new(
        "Figure 6: max-min fair throughput by traffic pattern (1 Gbps links)",
        &[
            "structure",
            "pattern",
            "flows",
            "aggregate Gbps",
            "per-flow mean",
            "per-flow min",
            "ABT",
            "mean hops",
        ],
    );
    for r in &rows {
        table.add_row(vec![
            r.report.topology.clone(),
            r.pattern.clone(),
            r.report.flows.to_string(),
            fmt_f(r.report.aggregate_rate, 1),
            fmt_f(r.report.mean_rate, 3),
            fmt_f(r.report.min_rate, 3),
            fmt_f(r.report.abt, 1),
            fmt_f(r.report.mean_hops, 2),
        ]);
    }
    table.print();
    println!("(shape: per-flow throughput rises with h — shorter paths contend less;");
    println!(" fat-tree wins per-flow at equal N but at far higher switch cost — see Table 2)");
    abccc_bench::emit_json("fig6_throughput", &rows);
    for r in &rows {
        if !r.report.topology.is_empty() && r.pattern == "permutation" {
            bench.topology(r.report.topology.clone());
        }
    }
    bench.finish();
}
