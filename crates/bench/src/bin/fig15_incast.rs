//! **Figure 15** (transport ablation) — the incast problem: many senders
//! converge on one sink. Open-loop line-rate senders overwhelm the sink's
//! shallow buffers; AIMD closed-loop senders share the sink NIC cleanly.
//! Run across fan-in sizes and structures.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::{BCube, BCubeParams};
use dcn_workloads::traffic;
use netgraph::Topology;
use packetsim::{AimdConfig, FlowSpec, PacketSim, PacketSimConfig};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    fan_in: usize,
    open_loss: f64,
    aimd_loss: f64,
    open_p99_us: f64,
    aimd_p99_us: f64,
}

fn run<T: Topology>(topo: &T, fan_in: usize, rows: &mut Vec<Row>, table: &mut Table) {
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1CA5);
    let pairs = traffic::many_to_one(n, fan_in, &mut rng);
    let flows: Vec<FlowSpec> = pairs
        .iter()
        .map(|&(s, d)| FlowSpec::burst(s, d, 100, 0))
        .collect();
    let cfg = PacketSimConfig {
        buffer_packets: 8,
        ..Default::default()
    };
    let sim = PacketSim::new(topo, cfg);
    let open = sim.run(&flows).expect("run");
    let aimd = sim.run_aimd(&flows, AimdConfig::default()).expect("run");
    let row = Row {
        structure: open.topology.clone(),
        fan_in,
        open_loss: open.loss_rate(),
        aimd_loss: aimd.loss_rate(),
        open_p99_us: open.p99_latency_ns as f64 / 1000.0,
        aimd_p99_us: aimd.p99_latency_ns as f64 / 1000.0,
    };
    table.add_row(vec![
        row.structure.clone(),
        row.fan_in.to_string(),
        fmt_f(row.open_loss, 4),
        fmt_f(row.aimd_loss, 4),
        fmt_f(row.open_p99_us, 0),
        fmt_f(row.aimd_p99_us, 0),
    ]);
    rows.push(row);
}

fn main() {
    let mut bench = BenchRun::start("fig15_incast");
    bench
        .param("fan_in", "4 8 16 32")
        .param("burst_packets", 100)
        .param("buffer_packets", 8)
        .seed(0x1CA5);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 15: incast (100-pkt bursts, 8-pkt buffers) — open loop vs AIMD",
        &[
            "structure",
            "fan-in",
            "open loss",
            "AIMD loss",
            "open p99 µs",
            "AIMD p99 µs",
        ],
    );
    let a2 = Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build");
    let a3 = Abccc::new(AbcccParams::new(4, 2, 3).expect("params")).expect("build");
    let bc = BCube::new(BCubeParams::new(4, 2).expect("params")).expect("build");
    for t in [a2.name(), a3.name(), bc.name()] {
        bench.topology(t);
    }
    for fan_in in [4usize, 8, 16, 32] {
        run(&a2, fan_in, &mut rows, &mut table);
        run(&a3, fan_in, &mut rows, &mut table);
        run(&bc, fan_in, &mut rows, &mut table);
    }
    table.print();
    println!("(shape: open-loop bursts lose >90% regardless of structure; AIMD cuts loss");
    println!(" by 2–40×. Higher h helps (more sink NICs), and ABCCC beats even BCube:");
    println!(" its crossbar spreads the convergence across the sink's ports)");
    abccc_bench::emit_json("fig15_incast", &rows);
    bench.finish();
}
