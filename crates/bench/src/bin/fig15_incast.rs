//! **Figure 15** (transport ablation) — the incast problem: many senders
//! converge on one sink. Open-loop line-rate senders overwhelm the sink's
//! shallow buffers; AIMD closed-loop senders share the sink NIC cleanly.
//! Run across fan-in sizes and structures.

fn main() {
    abccc_bench::registry::shim_main("fig15_incast");
}
