//! **Table 1** — structural comparison of ABCCC against BCCC, BCube,
//! DCell, fat-tree and the generalized hypercube at representative
//! configurations: servers, switches, wires, NIC ports per server,
//! diameter (closed form *and* exact BFS — they must agree), average path
//! length, and bisection width.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, fmt_opt, BenchRun, Table};
use dcn_baselines::*;
use dcn_metrics::TopologyStats;
use netgraph::Topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    servers: u64,
    switches: u64,
    wires: u64,
    ports: u32,
    diameter_formula: Option<u64>,
    diameter_bfs: Option<u32>,
    apl: Option<f64>,
    bisection: Option<u64>,
}

fn measure<T: Topology>(topo: &T, diameter_formula: Option<u64>) -> Row {
    let stats = TopologyStats::measure(topo);
    let bisection = dcn_metrics::bisection::exact_bisection_by_id(topo.network());
    Row {
        name: stats.name.clone(),
        servers: stats.servers,
        switches: stats.switches,
        wires: stats.wires,
        ports: stats.max_server_ports,
        diameter_formula,
        diameter_bfs: stats.diameter_server_hops,
        apl: stats.avg_path_length,
        bisection: Some(bisection),
    }
}

fn main() {
    let mut run = BenchRun::start("table1_properties");
    run.param("class", "n=4 configs");
    let mut rows: Vec<Row> = Vec::new();

    for h in [2, 3, 4] {
        let p = AbcccParams::new(4, 2, h).expect("valid params");
        let t = Abccc::new(p).expect("small build");
        rows.push(measure(&t, Some(p.diameter())));
    }
    {
        let p = BcccParams::new(4, 2).expect("valid params");
        let t = Bccc::new(p).expect("small build");
        rows.push(measure(&t, Some(p.diameter())));
    }
    {
        let p = BCubeParams::new(4, 2).expect("valid params");
        let t = BCube::new(p).expect("small build");
        rows.push(measure(&t, Some(p.diameter())));
    }
    {
        let p = DCellParams::new(4, 1).expect("valid params");
        let t = DCell::new(p.clone()).expect("small build");
        rows.push(measure(&t, None)); // closed form is only a bound
    }
    {
        let p = FatTreeParams::new(8).expect("valid params");
        let t = FatTree::new(p).expect("small build");
        rows.push(measure(&t, Some(1))); // servers never forward
    }
    {
        let p = HypercubeParams::new(4, 3).expect("valid params");
        let t = Hypercube::new(p).expect("small build");
        rows.push(measure(&t, Some(p.diameter())));
    }

    let mut table = Table::new(
        "Table 1: structural properties (n=4-class configs)",
        &[
            "structure",
            "servers",
            "switches",
            "wires",
            "ports/srv",
            "D(formula)",
            "D(BFS)",
            "APL",
            "bisection",
        ],
    );
    for r in &rows {
        table.add_row(vec![
            r.name.clone(),
            r.servers.to_string(),
            r.switches.to_string(),
            r.wires.to_string(),
            r.ports.to_string(),
            fmt_opt(r.diameter_formula),
            fmt_opt(r.diameter_bfs),
            r.apl.map_or("—".into(), |v| fmt_f(v, 2)),
            fmt_opt(r.bisection),
        ]);
    }
    table.print();

    // Consistency guard: where a closed form exists it must equal BFS.
    for r in &rows {
        if let (Some(f), Some(b)) = (r.diameter_formula, r.diameter_bfs) {
            assert_eq!(f, u64::from(b), "{}: formula vs BFS mismatch", r.name);
        }
    }
    println!("(all closed-form diameters verified against BFS)");
    abccc_bench::emit_json("table1_properties", &rows);
    for r in &rows {
        run.topology(r.name.clone());
    }
    run.finish();
}
