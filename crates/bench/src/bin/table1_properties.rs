//! **Table 1** — structural comparison of ABCCC against BCCC, BCube,
//! DCell, fat-tree and the generalized hypercube at representative
//! configurations: servers, switches, wires, NIC ports per server,
//! diameter (closed form *and* exact BFS — they must agree), average path
//! length, and bisection width.

fn main() {
    abccc_bench::registry::shim_main("table1_properties");
}
