//! **Figure 9** (GBC3 extension) — one-to-all and one-to-many routing:
//! broadcast-tree depth vs the unicast eccentricity, and the message
//! savings of one-to-many trees over repeated unicast.

use abccc::{broadcast, Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use netgraph::{NodeId, Topology};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    servers: u64,
    tree_depth: u32,
    eccentricity: u32,
    one_to_many_dests: usize,
    tree_messages: usize,
    unicast_messages: u64,
}

fn main() {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 9: one-to-all / one-to-many (src = server 0, 32 random dests)",
        &[
            "structure",
            "servers",
            "bcast depth",
            "ecc",
            "tree msgs(1:many)",
            "unicast msgs",
            "saving",
        ],
    );
    let mut run = BenchRun::start("fig9_broadcast");
    run.param("src", 0)
        .param("one_to_many_dests", 32)
        .seed(0xB0A5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB0A5);
    for (n, k, h) in [(4, 1, 2), (4, 2, 2), (4, 2, 3), (2, 4, 3), (4, 2, 4)] {
        let p = AbcccParams::new(n, k, h).expect("params");
        run.topology(p.to_string());
        let topo = Abccc::new(p).expect("build");
        let src = NodeId(0);
        let tree = broadcast::one_to_all(&p, src).expect("tree");
        tree.validate(&p).expect("valid tree");
        let ecc = netgraph::bfs::server_eccentricity(topo.network(), src).expect("connected");

        // One-to-many to 32 random destinations.
        let servers: Vec<NodeId> = topo.network().server_ids().filter(|&s| s != src).collect();
        let dests: Vec<NodeId> = servers
            .choose_multiple(&mut rng, 32.min(servers.len()))
            .copied()
            .collect();
        let many = broadcast::one_to_many(&p, src, &dests).expect("tree");
        many.validate(&p).expect("valid tree");
        let tree_msgs = many.member_count() - 1; // one message per tree edge
        let unicast_msgs: u64 = dests
            .iter()
            .map(|&d| {
                abccc::routing::distance(
                    &p,
                    abccc::ServerAddr::from_node_id(&p, src),
                    abccc::ServerAddr::from_node_id(&p, d),
                )
            })
            .sum();
        let row = Row {
            structure: p.to_string(),
            servers: p.server_count(),
            tree_depth: tree.depth(),
            eccentricity: ecc,
            one_to_many_dests: dests.len(),
            tree_messages: tree_msgs,
            unicast_messages: unicast_msgs,
        };
        table.add_row(vec![
            row.structure.clone(),
            row.servers.to_string(),
            row.tree_depth.to_string(),
            row.eccentricity.to_string(),
            row.tree_messages.to_string(),
            row.unicast_messages.to_string(),
            fmt_f(
                1.0 - row.tree_messages as f64 / row.unicast_messages as f64,
                2,
            ),
        ]);
        rows.push(row);
    }
    table.print();
    println!("(shape: broadcast depth tracks the eccentricity within +2 crossbar fan-outs;");
    println!(" one-to-many trees send far fewer messages than repeated unicast)");
    abccc_bench::emit_json("fig9_broadcast", &rows);
    run.finish();
}
