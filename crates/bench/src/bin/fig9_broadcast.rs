//! **Figure 9** (GBC3 extension) — one-to-all and one-to-many routing:
//! broadcast-tree depth vs the unicast eccentricity, and the message
//! savings of one-to-many trees over repeated unicast.

fn main() {
    abccc_bench::registry::shim_main("fig9_broadcast");
}
