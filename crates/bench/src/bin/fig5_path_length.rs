//! **Figure 5** — average routing path length: the native ABCCC routing vs
//! the BFS-optimal baseline over sampled pairs, across `(k, h)`; BCube and
//! DCell rows for context. The ABCCC stretch must be exactly 1.0 (the
//! destination-aware permutation is provably shortest; asserted here too).

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::{BCube, BCubeParams, DCell, DCellParams};
use dcn_metrics::{routing_quality, RoutingQuality};
use rand::SeedableRng;

fn main() {
    let mut run = BenchRun::start("fig5_path_length");
    let seed = 0xF165;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pairs = 1000;
    run.param("n", 4).param("pairs", pairs).seed(seed);
    let mut results: Vec<RoutingQuality> = Vec::new();

    for (k, h) in [(1, 2), (2, 2), (3, 2), (2, 3), (3, 3), (2, 4), (3, 4)] {
        let p = AbcccParams::new(4, k, h).expect("params");
        let t = Abccc::new(p).expect("build");
        let q = routing_quality(&t, pairs, &mut rng);
        assert!(
            (q.mean_stretch - 1.0).abs() < 1e-12,
            "{p}: ABCCC routing must be shortest"
        );
        assert!(
            u64::from(q.native_max) <= p.diameter(),
            "{p}: exceeded diameter"
        );
        results.push(q);
    }
    for k in [1, 2] {
        let t = BCube::new(BCubeParams::new(4, k).expect("params")).expect("build");
        results.push(routing_quality(&t, pairs, &mut rng));
    }
    {
        let t = DCell::new(DCellParams::new(4, 2).expect("params")).expect("build");
        results.push(routing_quality(&t, pairs, &mut rng));
    }

    let mut table = Table::new(
        "Figure 5: native routing vs BFS-optimal (1000 random pairs each)",
        &[
            "structure",
            "mean native",
            "mean optimal",
            "stretch",
            "max native",
        ],
    );
    for q in &results {
        table.add_row(vec![
            q.name.clone(),
            fmt_f(q.native_mean, 3),
            fmt_f(q.optimal_mean, 3),
            fmt_f(q.mean_stretch, 3),
            q.native_max.to_string(),
        ]);
    }
    table.print();
    println!("(shape: ABCCC/BCube stretch = 1.000 exactly; DCellRouting slightly above 1)");
    abccc_bench::emit_json("fig5_path_length", &results);
    for q in &results {
        run.topology(q.name.clone());
    }
    run.finish();
}
