//! **Figure 5** — average routing path length: the native ABCCC routing vs
//! the BFS-optimal baseline over sampled pairs, across `(k, h)`; BCube and
//! DCell rows for context. The ABCCC stretch must be exactly 1.0 (the
//! destination-aware permutation is provably shortest; asserted here too).

fn main() {
    abccc_bench::registry::shim_main("fig5_path_length");
}
