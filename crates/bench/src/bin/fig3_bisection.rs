//! **Figure 3** — bisection width, absolute and per server, for the `h`
//! sweep; small instances are verified exactly with max-flow min-cut and
//! probed with random balanced bipartitions.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use netgraph::Topology;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    name: String,
    k: u32,
    h: u32,
    bisection_formula: u64,
    per_server: f64,
    exact_small: Option<u64>,
    probe_min: Option<u64>,
}

fn main() {
    let mut run = BenchRun::start("fig3_bisection");
    let n = 4;
    let seed = 0xB15EC;
    run.param("n", n)
        .param("k", "1..=4")
        .param("h", "2..=4")
        .seed(seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut points = Vec::new();
    let mut table = Table::new(
        "Figure 3: bisection width vs (k, h), n = 4",
        &[
            "config",
            "servers",
            "bisection",
            "per server",
            "max-flow check",
            "probe min",
        ],
    );
    for k in 1..=4u32 {
        for h in [2, 3, 4] {
            let p = AbcccParams::new(n, k, h).expect("params");
            let formula = p.bisection_width().expect("even n");
            let per_server = p.bisection_per_server().expect("even n");
            // Exact verification on instances small enough for max-flow.
            let (exact, probe) = if p.server_count() <= 512 {
                let t = Abccc::new(p).expect("build");
                let exact = dcn_metrics::bisection::exact_bisection_by_id(t.network());
                let probe = dcn_metrics::bisection::random_balanced_probe(t.network(), 4, &mut rng);
                (Some(exact), Some(probe.min_cut))
            } else {
                (None, None)
            };
            if let Some(e) = exact {
                assert_eq!(e, formula, "{p}: max-flow disagrees with formula");
            }
            if let Some(pm) = probe {
                assert!(pm >= formula, "{p}: random cut beat the canonical cut");
            }
            table.add_row(vec![
                p.to_string(),
                p.server_count().to_string(),
                formula.to_string(),
                fmt_f(per_server, 4),
                exact.map_or("—".into(), |e| e.to_string()),
                probe.map_or("—".into(), |e| e.to_string()),
            ]);
            points.push(Point {
                name: p.to_string(),
                k,
                h,
                bisection_formula: formula,
                per_server,
                exact_small: exact,
                probe_min: probe,
            });
        }
    }
    table.print();
    println!("(shape: per-server bisection = 1/(2m) — rises with h at fixed k)");
    abccc_bench::emit_json("fig3_bisection", &points);
    run.finish();
}
