//! **Figure 3** — bisection width, absolute and per server, for the `h`
//! sweep; small instances are verified exactly with max-flow min-cut and
//! probed with random balanced bipartitions.

fn main() {
    abccc_bench::registry::shim_main("fig3_bisection");
}
