//! **Figure 12** (deployment ablation) — crossbar buy-ahead economics.
//!
//! ABCCC's zero-touch expansion assumes the group crossbars have spare
//! ports when the group size `m` grows (which happens every step at
//! `h = 2`). This experiment quantifies the trade-off: buying radix-`c`
//! crossbars up front costs more today, but under-buying forces a
//! full crossbar replacement (plus recabling of every group) the moment
//! `m` exceeds `c`.

use abccc::AbcccParams;
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_metrics::CostModel;
use serde::Serialize;

#[derive(Serialize)]
struct Strategy {
    initial_radix: u32,
    upfront_crossbar_usd: f64,
    total_crossbar_usd: f64,
    crossbars_discarded: u64,
    groups_recabled: u64,
}

fn main() {
    let mut run = BenchRun::start("fig12_headroom");
    let cost = CostModel::default();
    // BCCC-style deployment (h = 2, m = k + 1), growing k = 1 → 5.
    let n = 4u32;
    let k0 = 1u32;
    let k1 = 5u32;
    run.param("n", n)
        .param("h", 2)
        .param("k", format!("{k0}..={k1}"))
        .param("initial_radix", "2 4 6 8");
    let m_final = AbcccParams::new(n, k1, 2).expect("params").group_size();

    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 12: crossbar radix buy-ahead, ABCCC(4,k,2) grown k=1→5 (m: 2→6)",
        &[
            "initial radix c",
            "upfront crossbar $",
            "total crossbar $",
            "crossbars discarded",
            "groups recabled",
        ],
    );
    for c0 in [2u32, 4, 6, 8] {
        let mut radix = c0;
        let mut total = 0.0f64;
        let mut upfront = 0.0f64;
        let mut discarded = 0u64;
        let mut recabled = 0u64;
        for k in k0..=k1 {
            let p = AbcccParams::new(n, k, 2).expect("params");
            let m = p.group_size();
            let labels = p.label_space();
            let prev_labels = if k == k0 {
                0
            } else {
                AbcccParams::new(n, k - 1, 2).expect("params").label_space()
            };
            if m > radix {
                // Outgrew the installed crossbars: replace them all.
                discarded += prev_labels;
                recabled += prev_labels;
                total += cost.switch_price(m_final as usize) * prev_labels as f64;
                radix = m_final; // replacement buys full headroom
            }
            // New labels get crossbars at the current purchase radix.
            let new_labels = labels - prev_labels;
            let buy = cost.switch_price(radix.max(m) as usize) * new_labels as f64;
            total += buy;
            if k == k0 {
                upfront = buy;
            }
        }
        table.add_row(vec![
            c0.to_string(),
            fmt_f(upfront, 0),
            fmt_f(total, 0),
            discarded.to_string(),
            recabled.to_string(),
        ]);
        rows.push(Strategy {
            initial_radix: c0,
            upfront_crossbar_usd: upfront,
            total_crossbar_usd: total,
            crossbars_discarded: discarded,
            groups_recabled: recabled,
        });
    }
    table.print();
    println!("(shape: buying m_final-port crossbars up front costs pennies more per group");
    println!(" and preserves the zero-touch expansion; under-buying forces a fabric-wide");
    println!(" crossbar replacement — the BCube-style legacy cost ABCCC is built to avoid)");
    abccc_bench::emit_json("fig12_headroom", &rows);
    run.finish();
}
