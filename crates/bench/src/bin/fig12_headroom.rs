//! **Figure 12** (deployment ablation) — crossbar buy-ahead economics.
//!
//! ABCCC's zero-touch expansion assumes the group crossbars have spare
//! ports when the group size `m` grows (which happens every step at
//! `h = 2`). This experiment quantifies the trade-off: buying radix-`c`
//! crossbars up front costs more today, but under-buying forces a
//! full crossbar replacement (plus recabling of every group) the moment
//! `m` exceeds `c`.

fn main() {
    abccc_bench::registry::shim_main("fig12_headroom");
}
