//! **Figure 4** — expansion cost: growing each family step by step, what
//! is the new spend and — the paper's point — how much *legacy* hardware
//! must be touched? ABCCC/BCCC: zero. BCube/DCell: a NIC retrofitted into
//! every existing server. Fat-tree: full fabric replacement.

use abccc::AbcccParams;
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::{BCubeParams, DCellParams, FatTreeParams};
use dcn_metrics::{expansion, CostModel, ExpansionLedger};

fn main() {
    let mut run = BenchRun::start("fig4_expansion");
    run.param("n", 4).param("steps", "3 (2 for DCell/fat-tree)");
    let cost = CostModel::default();
    let mut ledgers: Vec<ExpansionLedger> = Vec::new();

    // ABCCC h=3 and BCCC (h=2), three steps each.
    for h in [2, 3] {
        let mut p = AbcccParams::new(4, 1, h).expect("params");
        for _ in 0..3 {
            let l = expansion::abccc_expansion(p, &cost).expect("grow");
            p = p.grown().expect("grow");
            ledgers.push(l);
        }
    }
    // BCube, three steps.
    {
        let mut p = BCubeParams::new(4, 1).expect("params");
        for _ in 0..3 {
            ledgers.push(expansion::bcube_expansion(p, &cost).expect("grow"));
            p = BCubeParams::new(4, p.k() + 1).expect("params");
        }
    }
    // DCell, two steps (size explodes).
    {
        let mut p = DCellParams::new(4, 0).expect("params");
        for _ in 0..2 {
            ledgers.push(expansion::dcell_expansion(p.clone(), &cost).expect("grow"));
            p = DCellParams::new(4, p.k() + 1).expect("params");
        }
    }
    // Fat-tree: p = 4 → 6 → 8.
    {
        ledgers.push(
            expansion::fattree_expansion(FatTreeParams::new(4).expect("p"), 6, &cost)
                .expect("grow"),
        );
        ledgers.push(
            expansion::fattree_expansion(FatTreeParams::new(6).expect("p"), 8, &cost)
                .expect("grow"),
        );
    }

    let mut table = Table::new(
        "Figure 4: expansion steps — new spend vs legacy impact",
        &[
            "step",
            "servers",
            "new capex $",
            "legacy NICs added",
            "legacy cables rewired",
            "legacy switches discarded",
            "legacy touch",
        ],
    );
    for l in &ledgers {
        table.add_row(vec![
            l.name.clone(),
            format!("{}→{}", l.from_servers, l.to_servers),
            fmt_f(l.new_capex_usd, 0),
            l.legacy_nics_added.to_string(),
            l.legacy_cables_rewired.to_string(),
            l.legacy_switches_discarded.to_string(),
            if l.legacy_untouched() {
                "none".into()
            } else if l.legacy_switches_discarded > 0 {
                "fabric rebuilt".into()
            } else {
                format!("{:.0}% of servers", 100.0 * l.legacy_touch_fraction())
            },
        ]);
    }
    table.print();
    println!("(shape: ABCCC/BCCC rows show zero legacy impact; BCube/DCell touch 100% of servers)");
    abccc_bench::emit_json("fig4_expansion", &ledgers);
    run.finish();
}
