//! **Figure 4** — expansion cost: growing each family step by step, what
//! is the new spend and — the paper's point — how much *legacy* hardware
//! must be touched? ABCCC/BCCC: zero. BCube/DCell: a NIC retrofitted into
//! every existing server. Fat-tree: full fabric replacement.

fn main() {
    abccc_bench::registry::shim_main("fig4_expansion");
}
