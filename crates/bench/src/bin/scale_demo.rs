//! Scale demonstration — builds laptop-scale large instances (10⁵–10⁶
//! node networks), times construction, and exercises routing and sampled
//! metrics to show the library is usable well beyond the toy sizes of the
//! figure binaries.

fn main() {
    abccc_bench::registry::shim_main("scale_demo");
}
