//! Scale demonstration — builds laptop-scale large instances (10⁵–10⁶
//! node networks), times construction, and exercises routing and sampled
//! metrics to show the library is usable well beyond the toy sizes of the
//! figure binaries.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use netgraph::{NodeId, Topology};
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut run = BenchRun::start("scale_demo");
    run.param("route_pairs", 20_000)
        .param("apl_pairs", 1000)
        .seed(1);
    let mut table = Table::new(
        "Scale demo: construction + routing at large N",
        &[
            "config",
            "servers",
            "nodes",
            "links",
            "build ms",
            "routes/s (1-to-1)",
            "sampled APL (1k pairs)",
        ],
    );
    for (n, k, h) in [(8u32, 3u32, 3u32), (8, 3, 2), (16, 3, 3), (6, 4, 3)] {
        let p = AbcccParams::new(n, k, h).expect("params");
        run.topology(p.to_string());
        let t0 = Instant::now();
        let topo = Abccc::new(p).expect("build");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let net = topo.network();

        // Routing throughput (address arithmetic only — no graph walk).
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pairs: Vec<(NodeId, NodeId)> = (0..20_000)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..p.server_count()) as u32),
                    NodeId(rng.gen_range(0..p.server_count()) as u32),
                )
            })
            .collect();
        let t1 = Instant::now();
        let mut total_hops = 0usize;
        for &(s, d) in &pairs {
            let r = abccc::DigitRouter::shortest()
                .route_ids(&p, s, d)
                .expect("route");
            total_hops += abccc::routing::hops(&r);
        }
        let rps = pairs.len() as f64 / t1.elapsed().as_secs_f64();

        // Sampled APL via the closed-form distance (exact per pair).
        let sampled_apl: f64 = pairs
            .iter()
            .take(1000)
            .map(|&(s, d)| {
                abccc::routing::distance(
                    &p,
                    abccc::ServerAddr::from_node_id(&p, s),
                    abccc::ServerAddr::from_node_id(&p, d),
                ) as f64
            })
            .sum::<f64>()
            / 1000.0;
        std::hint::black_box(total_hops);

        table.add_row(vec![
            p.to_string(),
            p.server_count().to_string(),
            net.node_count().to_string(),
            net.link_count().to_string(),
            fmt_f(build_ms, 0),
            fmt_f(rps, 0),
            fmt_f(sampled_apl, 2),
        ]);
    }
    table.print();
    run.finish();
}
