//! **Figure 7** — fault tolerance: routing success ratio, path stretch and
//! throughput retention of the native fault-tolerant routing under growing
//! server and switch failure rates, measured with the seeded resilience
//! campaign engine (the largest-component connectivity fraction shown as
//! the reachability ceiling).

use abccc::AbcccParams;
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_resilience::{CampaignConfig, PairSampling, ScenarioKind};
use serde::Serialize;

const TRIALS: usize = 5;
const PAIRS_PER_TRIAL: usize = 200;
const RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];

#[derive(Serialize)]
struct Point {
    structure: String,
    class: String,
    rate: f64,
    success_ratio: f64,
    connectivity_ceiling: f64,
    mean_stretch: f64,
    mean_hops_survivors: f64,
    throughput_retention: f64,
    bfs_fallback_share: f64,
}

fn run_class(
    p: AbcccParams,
    class: &str,
    scenario_of: impl Fn(f64) -> ScenarioKind,
    points: &mut Vec<Point>,
    table: &mut Table,
) {
    for rate in RATES {
        let report = CampaignConfig::new(p)
            .scenario(scenario_of(rate))
            .sampling(PairSampling::UniformRandom {
                pairs: PAIRS_PER_TRIAL,
            })
            .trials(TRIALS)
            .seed((rate * 1000.0) as u64 ^ 0xFA)
            .run()
            .expect("campaign");
        let s = &report.summary;
        let point = Point {
            structure: report.topology.clone(),
            class: class.to_string(),
            rate,
            success_ratio: s.route_completion,
            connectivity_ceiling: s.connectivity_fraction,
            mean_stretch: s.mean_stretch,
            mean_hops_survivors: report
                .trials
                .iter()
                .map(|t| t.mean_hops / report.trials.len() as f64)
                .sum(),
            throughput_retention: s.throughput_retention,
            bfs_fallback_share: if s.routed == 0 {
                0.0
            } else {
                s.tier_counts.bfs as f64 / s.routed as f64
            },
        };
        table.add_row(vec![
            point.structure.clone(),
            point.class.clone(),
            fmt_f(point.rate, 2),
            fmt_f(point.success_ratio, 4),
            fmt_f(point.connectivity_ceiling, 4),
            fmt_f(point.mean_stretch, 3),
            fmt_f(point.mean_hops_survivors, 2),
            fmt_f(point.throughput_retention, 3),
        ]);
        points.push(point);
    }
}

fn main() {
    let mut run = BenchRun::start("fig7_faults");
    run.param("n", 4)
        .param("k", 2)
        .param("h", "2 3")
        .param("trials", TRIALS as u64)
        .param("pairs_per_trial", PAIRS_PER_TRIAL as u64)
        .param("rates", "0.00..0.20")
        .param("engine", "resilience campaign")
        .param("seed_scheme", "(rate*1000) ^ 0xFA");
    let mut points = Vec::new();
    let mut table = Table::new(
        "Figure 7: routing under failures (5 trials × 200 pairs per point)",
        &[
            "structure",
            "failed class",
            "rate",
            "success",
            "conn ceiling",
            "stretch",
            "mean hops",
            "tput ret",
        ],
    );
    for h in [2, 3] {
        let p = AbcccParams::new(4, 2, h).expect("params");
        run.topology(p.to_string());
        run_class(
            p,
            "servers",
            |rate| ScenarioKind::Uniform {
                server_rate: rate,
                switch_rate: 0.0,
                link_rate: 0.0,
            },
            &mut points,
            &mut table,
        );
        run_class(
            p,
            "switches",
            |rate| ScenarioKind::Uniform {
                server_rate: 0.0,
                switch_rate: rate,
                link_rate: 0.0,
            },
            &mut points,
            &mut table,
        );
    }
    table.print();
    println!("(shape: success tracks the connectivity ceiling — the retry ladder");
    println!(" finds a path whenever one exists; stretch and throughput degrade");
    println!(" gracefully as the failure rate grows)");
    abccc_bench::emit_json("fig7_faults", &points);
    run.finish();
}
