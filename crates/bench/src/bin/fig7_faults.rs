//! **Figure 7** — fault tolerance: routing success ratio and mean path
//! length of the native fault-tolerant routing under growing server and
//! switch failure rates (the omniscient-BFS connectivity ceiling shown for
//! reference).

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_workloads::FailureScenario;
use netgraph::{NodeId, Topology};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    structure: String,
    class: String,
    rate: f64,
    success_ratio: f64,
    connectivity_ceiling: f64,
    mean_hops_survivors: f64,
}

fn run_class(
    topo: &Abccc,
    class: &str,
    scenario_of: impl Fn(f64) -> FailureScenario,
    points: &mut Vec<Point>,
    table: &mut Table,
) {
    let net = topo.network();
    let n = net.server_count();
    let trials = 5;
    let pairs_per_trial = 200;
    for rate in [0.0, 0.05, 0.10, 0.15, 0.20] {
        let mut ok = 0usize;
        let mut reachable = 0usize;
        let mut total = 0usize;
        let mut hops_sum = 0u64;
        let mut rng = rand::rngs::StdRng::seed_from_u64((rate * 1000.0) as u64 ^ 0xFA);
        for _ in 0..trials {
            let mask = scenario_of(rate).sample(net, &mut rng);
            for _ in 0..pairs_per_trial {
                let s = NodeId(rng.gen_range(0..n) as u32);
                let d = NodeId(rng.gen_range(0..n) as u32);
                if s == d || !mask.node_alive(s) || !mask.node_alive(d) {
                    continue;
                }
                total += 1;
                if netgraph::bfs::shortest_path(net, s, d, Some(&mask)).is_some() {
                    reachable += 1;
                }
                if let Ok(r) = topo.route_avoiding(s, d, &mask) {
                    debug_assert!(r.validate(net, Some(&mask)).is_ok());
                    ok += 1;
                    hops_sum += r.server_hops(net) as u64;
                }
            }
        }
        let p = Point {
            structure: topo.name(),
            class: class.to_string(),
            rate,
            success_ratio: ok as f64 / total as f64,
            connectivity_ceiling: reachable as f64 / total as f64,
            mean_hops_survivors: if ok == 0 {
                0.0
            } else {
                hops_sum as f64 / ok as f64
            },
        };
        table.add_row(vec![
            p.structure.clone(),
            p.class.clone(),
            fmt_f(p.rate, 2),
            fmt_f(p.success_ratio, 4),
            fmt_f(p.connectivity_ceiling, 4),
            fmt_f(p.mean_hops_survivors, 2),
        ]);
        points.push(p);
    }
}

use rand::Rng;

fn main() {
    let mut run = BenchRun::start("fig7_faults");
    run.param("n", 4)
        .param("k", 2)
        .param("h", "2 3")
        .param("trials", 5)
        .param("pairs_per_trial", 200)
        .param("rates", "0.00..0.20")
        .param("seed_scheme", "(rate*1000) ^ 0xFA");
    let mut points = Vec::new();
    let mut table = Table::new(
        "Figure 7: routing under failures (5 trials × 200 pairs per point)",
        &[
            "structure",
            "failed class",
            "rate",
            "success",
            "BFS ceiling",
            "mean hops",
        ],
    );
    for h in [2, 3] {
        let topo = Abccc::new(AbcccParams::new(4, 2, h).expect("params")).expect("build");
        run.topology(topo.name());
        run_class(
            &topo,
            "servers",
            FailureScenario::servers,
            &mut points,
            &mut table,
        );
        run_class(
            &topo,
            "switches",
            FailureScenario::switches,
            &mut points,
            &mut table,
        );
    }
    table.print();
    println!("(shape: success tracks the BFS connectivity ceiling — the detour");
    println!(" routing finds a path whenever one exists; path length degrades gracefully)");
    abccc_bench::emit_json("fig7_faults", &points);
    run.finish();
}
