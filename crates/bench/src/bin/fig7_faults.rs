//! **Figure 7** — fault tolerance: routing success ratio, path stretch and
//! throughput retention of the native fault-tolerant routing under growing
//! server and switch failure rates, measured with the seeded resilience
//! campaign engine (the largest-component connectivity fraction shown as
//! the reachability ceiling).

fn main() {
    abccc_bench::registry::shim_main("fig7_faults");
}
