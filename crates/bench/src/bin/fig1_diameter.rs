//! **Figure 1** — diameter vs order `k`: ABCCC for `h ∈ {2,3,4,5}` against
//! BCube and the DCell bound (closed forms; every ABCCC/BCube formula is
//! BFS-verified in the test suite).

fn main() {
    abccc_bench::registry::shim_main("fig1_diameter");
}
