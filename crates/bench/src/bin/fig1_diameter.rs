//! **Figure 1** — diameter vs order `k`: ABCCC for `h ∈ {2,3,4,5}` against
//! BCube and the DCell bound (closed forms; every ABCCC/BCube formula is
//! BFS-verified in the test suite).

use abccc::AbcccParams;
use abccc_bench::{BenchRun, Table};
use dcn_baselines::{BCubeParams, DCellParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    series: String,
    k: u32,
    diameter: u64,
}

fn main() {
    let mut run = BenchRun::start("fig1_diameter");
    let n = 4;
    run.param("n", n).param("k", "1..=6").param("h", "2..=5");
    let mut points: Vec<Point> = Vec::new();
    let mut table = Table::new(
        "Figure 1: diameter (server hops) vs order k, n = 4",
        &[
            "k",
            "ABCCC h=2 (BCCC)",
            "ABCCC h=3",
            "ABCCC h=4",
            "ABCCC h=5",
            "BCube",
            "DCell bound",
        ],
    );
    for k in 1..=6u32 {
        let mut cells = vec![k.to_string()];
        for h in [2, 3, 4, 5] {
            let p = AbcccParams::new(n, k, h).expect("params");
            cells.push(p.diameter().to_string());
            points.push(Point {
                series: format!("ABCCC h={h}"),
                k,
                diameter: p.diameter(),
            });
        }
        let bc = BCubeParams::new(n, k).expect("params");
        cells.push(bc.diameter().to_string());
        points.push(Point {
            series: "BCube".into(),
            k,
            diameter: bc.diameter(),
        });
        let dc = DCellParams::new(n, k.min(3)).map(|p| p.diameter_bound());
        cells.push(dc.map_or("—".into(), |d| d.to_string()));
        table.add_row(cells);
    }
    table.print();
    println!("(shape: BCube k+1 ≤ ABCCC (k+1)+m ≤ BCCC 2(k+1); larger h shrinks m)");
    abccc_bench::emit_json("fig1_diameter", &points);
    run.finish();
}
