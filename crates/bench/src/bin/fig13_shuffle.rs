//! **Figure 13** (application level) — MapReduce shuffle completion: the
//! workload the server-centric papers use to motivate high bisection.
//! `mappers × reducers` simultaneous bulk transfers; we report max-min
//! fair shuffle time (data ÷ min rate), packet-level mean flow completion
//! time, and Jain's fairness index.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::*;
use dcn_workloads::traffic;
use flowsim::FlowSim;
use netgraph::Topology;
use packetsim::{FlowSpec, PacketSim, PacketSimConfig};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    flows: usize,
    min_rate: f64,
    flow_shuffle_time: f64,
    fairness: f64,
    pkt_mean_fct_us: Option<f64>,
    pkt_loss: f64,
}

const DATA_GBITS_PER_FLOW: f64 = 1.0;

fn run<T: Topology>(topo: &T, rows: &mut Vec<Row>, table: &mut Table) {
    run_inner(topo, rows, table, 1)
}

fn run_multipath<T: Topology>(topo: &T, rows: &mut Vec<Row>, table: &mut Table, paths: usize) {
    run_inner(topo, rows, table, paths)
}

fn run_inner<T: Topology>(topo: &T, rows: &mut Vec<Row>, table: &mut Table, paths: usize) {
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5_4F);
    // Fixed 8×8 shuffle so every structure carries the same job.
    let (mappers, reducers) = (8.min(n / 2 - 1), 8.min(n / 2 - 1));
    let pairs = traffic::shuffle(n, mappers, reducers, &mut rng);

    let flow = if paths <= 1 {
        FlowSim::new(topo).run(&pairs).expect("run")
    } else {
        FlowSim::new(topo)
            .run_multipath(&pairs, paths)
            .expect("run")
    };
    // Shuffle finishes when the slowest transfer finishes.
    let shuffle_time = DATA_GBITS_PER_FLOW / flow.min_rate;

    // Packet level: shorter trains (50 pkts) with generous buffers so FCT
    // reflects contention, not loss recovery.
    let specs: Vec<FlowSpec> = pairs
        .iter()
        .map(|&(s, d)| FlowSpec::bulk(s, d, 50))
        .collect();
    let cfg = PacketSimConfig {
        buffer_packets: 1024,
        ..Default::default()
    };
    let pkt = PacketSim::new(topo, cfg).run(&specs).expect("run");

    let row = Row {
        structure: if paths > 1 {
            format!("{} ×{paths}path", flow.topology)
        } else {
            flow.topology.clone()
        },
        flows: pairs.len(),
        min_rate: flow.min_rate,
        flow_shuffle_time: shuffle_time,
        fairness: flow.fairness_index(),
        pkt_mean_fct_us: pkt.mean_fct_ns().map(|v| v / 1000.0),
        pkt_loss: pkt.loss_rate(),
    };
    table.add_row(vec![
        row.structure.clone(),
        row.flows.to_string(),
        fmt_f(row.min_rate, 3),
        fmt_f(row.flow_shuffle_time, 2),
        fmt_f(row.fairness, 3),
        row.pkt_mean_fct_us.map_or("—".into(), |v| fmt_f(v, 0)),
        fmt_f(row.pkt_loss, 4),
    ]);
    rows.push(row);
}

fn main() {
    let mut bench = BenchRun::start("fig13_shuffle");
    bench
        .param("mappers", 8)
        .param("reducers", 8)
        .param("gbits_per_flow", DATA_GBITS_PER_FLOW)
        .param("pkt_train", 50)
        .seed(0x5_4F);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 13: MapReduce shuffle (m×r bulk transfers, 1 Gbit each)",
        &[
            "structure",
            "flows",
            "min rate Gbps",
            "shuffle time s",
            "Jain fairness",
            "pkt mean FCT µs",
            "pkt loss",
        ],
    );
    run(
        &Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &Abccc::new(AbcccParams::new(4, 2, 3).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &BCube::new(BCubeParams::new(4, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &FatTree::new(FatTreeParams::new(8).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &DCell::new(DCellParams::new(4, 1).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    // The ABCCC lever: stripe each transfer over its disjoint paths.
    run_multipath(
        &Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
        2,
    );
    run_multipath(
        &Abccc::new(AbcccParams::new(4, 2, 3).expect("params")).expect("build"),
        &mut rows,
        &mut table,
        3,
    );
    table.print();
    println!("(shape: single-path shuffle is incast-limited and similar across the");
    println!(" server-centric families; striping over ABCCC's disjoint parallel paths");
    println!(" is the lever — it engages all h NIC ports of the hot reducers)");
    abccc_bench::emit_json("fig13_shuffle", &rows);
    for r in &rows {
        bench.topology(r.structure.clone());
    }
    bench.finish();
}
