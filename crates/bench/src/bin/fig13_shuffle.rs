//! **Figure 13** (application level) — MapReduce shuffle completion: the
//! workload the server-centric papers use to motivate high bisection.
//! `mappers × reducers` simultaneous bulk transfers; we report max-min
//! fair shuffle time (data ÷ min rate), packet-level mean flow completion
//! time, and Jain's fairness index.

fn main() {
    abccc_bench::registry::shim_main("fig13_shuffle");
}
