//! **Figure 14** (ICC'15 companion, second axis) — load balance of the
//! permutation strategies: how evenly each generator spreads a permutation
//! workload over the directed links. The randomized strategies trade a
//! little path length for spread; the structure-aware ones win on both.

fn main() {
    abccc_bench::registry::shim_main("fig14_load_balance");
}
