//! **Figure 14** (ICC'15 companion, second axis) — load balance of the
//! permutation strategies: how evenly each generator spreads a permutation
//! workload over the directed links. The randomized strategies trade a
//! little path length for spread; the structure-aware ones win on both.

use abccc::{routing, Abccc, AbcccParams, PermStrategy};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_workloads::traffic;
use netgraph::{Route, Topology};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    strategy: String,
    max_load: u32,
    imbalance: f64,
    cv: f64,
    mean_hops: f64,
}

fn main() {
    let mut run = BenchRun::start("fig14_load_balance");
    run.param("configs", "(4,2,2) (4,3,3)").seed(0x10AD);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 14: link-load balance by permutation strategy (random permutation)",
        &[
            "structure",
            "strategy",
            "max link load",
            "imbalance",
            "cv",
            "mean hops",
        ],
    );
    for (n, k, h) in [(4, 2, 2), (4, 3, 3)] {
        let p = AbcccParams::new(n, k, h).expect("params");
        run.topology(p.to_string());
        let topo = Abccc::new(p).expect("build");
        let net = topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x10AD);
        let pairs = traffic::random_permutation(net.server_count(), &mut rng);
        for strat in PermStrategy::all() {
            let router = abccc::DigitRouter::new(strat);
            let routes: Vec<Route> = pairs
                .iter()
                .map(|&(s, d)| router.route_ids(&p, s, d).expect("route"))
                .collect();
            let load = dcn_metrics::load::link_load(net, &routes);
            let mean_hops =
                routes.iter().map(routing::hops).sum::<usize>() as f64 / routes.len() as f64;
            let row = Row {
                structure: p.to_string(),
                strategy: strat.label().to_string(),
                max_load: load.max_load,
                imbalance: load.imbalance(),
                cv: load.cv,
                mean_hops,
            };
            table.add_row(vec![
                row.structure.clone(),
                row.strategy.clone(),
                row.max_load.to_string(),
                fmt_f(row.imbalance, 2),
                fmt_f(row.cv, 3),
                fmt_f(row.mean_hops, 3),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!("(shape: the structure-aware strategies minimize mean path length at a");
    println!(" comparable hot-link load; naive orders pay ~0.5–1.0 extra hops for no");
    println!(" balance gain — permutation choice is a real tunable, per the companion)");
    abccc_bench::emit_json("fig14_load_balance", &rows);
    run.finish();
}
