//! **Figure 11** (packet level) — end-to-end latency distribution and loss
//! under a bulk permutation workload at packet granularity, validating the
//! flow-level ranking with the discrete-event simulator.

fn main() {
    abccc_bench::registry::shim_main("fig11_latency");
}
