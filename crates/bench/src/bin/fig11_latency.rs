//! **Figure 11** (packet level) — end-to-end latency distribution and loss
//! under a bulk permutation workload at packet granularity, validating the
//! flow-level ranking with the discrete-event simulator.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::*;
use dcn_workloads::traffic;
use netgraph::Topology;
use packetsim::{FlowSpec, PacketSim, PacketSimConfig, PacketSimReport};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    report: PacketSimReport,
    flows: usize,
}

fn run<T: Topology>(topo: &T, rows: &mut Vec<Row>, table: &mut Table) {
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1A7);
    let pairs = traffic::random_permutation(n, &mut rng);
    let flows: Vec<FlowSpec> = pairs
        .iter()
        .take(64)
        .map(|&(s, d)| FlowSpec::bulk(s, d, 300))
        .collect();
    let cfg = PacketSimConfig::default();
    let report = PacketSim::new(topo, cfg).run(&flows).expect("run");
    table.add_row(vec![
        report.topology.clone(),
        flows.len().to_string(),
        fmt_f(report.mean_latency_ns as f64 / 1000.0, 1),
        fmt_f(report.p50_latency_ns as f64 / 1000.0, 1),
        fmt_f(report.p99_latency_ns as f64 / 1000.0, 1),
        fmt_f(report.loss_rate(), 4),
        fmt_f(report.goodput_gbps(1), 2),
    ]);
    rows.push(Row {
        report,
        flows: flows.len(),
    });
}

fn main() {
    let mut bench = BenchRun::start("fig11_latency");
    bench
        .param("flows", 64)
        .param("packets_per_flow", 300)
        .param("packet_bytes", 1500)
        .param("buffer_packets", 64)
        .seed(0x1A7);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 11: packet-level latency & loss (64 bulk flows × 300 pkts, 1500 B, 64-pkt buffers)",
        &[
            "structure",
            "flows",
            "mean µs",
            "p50 µs",
            "p99 µs",
            "loss",
            "agg goodput Gbps",
        ],
    );
    run(
        &Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &Abccc::new(AbcccParams::new(4, 2, 3).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &BCube::new(BCubeParams::new(4, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &FatTree::new(FatTreeParams::new(8).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &DCell::new(DCellParams::new(4, 1).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    table.print();
    println!("(shape: latency orders by mean path length — BCube < ABCCC h=3 < h=2;");
    println!(" the packet-level ranking matches the flow-level one of Figure 6)");
    abccc_bench::emit_json("fig11_latency", &rows);
    for r in &rows {
        bench.topology(r.report.topology.clone());
    }
    bench.finish();
}
