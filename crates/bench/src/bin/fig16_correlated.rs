//! **Figure 16** (fault model ablation) — correlated outages vs the
//! uniform-random failures of Figure 7: rack loss (whole crossbar groups),
//! a whole-level firmware outage, and cable-bundle cuts. Reports surviving
//! connectivity and detour-routing success among alive servers.

fn main() {
    abccc_bench::registry::shim_main("fig16_correlated");
}
