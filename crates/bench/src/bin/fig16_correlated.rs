//! **Figure 16** (fault model ablation) — correlated outages vs the
//! uniform-random failures of Figure 7: rack loss (whole crossbar groups),
//! a whole-level firmware outage, and cable-bundle cuts. Reports surviving
//! connectivity and detour-routing success among alive servers.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_workloads::correlated;
use netgraph::{FaultMask, NodeId, Topology};
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    scenario: String,
    failed_nodes: usize,
    failed_links: usize,
    largest_component: f64,
    routing_success: f64,
}

fn evaluate(
    topo: &Abccc,
    scenario: &str,
    mask: &FaultMask,
    rows: &mut Vec<Row>,
    table: &mut Table,
) {
    let net = topo.network();
    let frac = netgraph::connectivity::largest_component_server_fraction(net, Some(mask));
    let alive: Vec<NodeId> = net.server_ids().filter(|&s| mask.node_alive(s)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FF);
    let mut ok = 0usize;
    let mut total = 0usize;
    for _ in 0..400 {
        let s = alive[rng.gen_range(0..alive.len())];
        let d = alive[rng.gen_range(0..alive.len())];
        if s == d {
            continue;
        }
        total += 1;
        if topo.route_avoiding(s, d, mask).is_ok() {
            ok += 1;
        }
    }
    let row = Row {
        structure: topo.name(),
        scenario: scenario.to_string(),
        failed_nodes: mask.failed_node_count(),
        failed_links: mask.failed_link_count(),
        largest_component: frac,
        routing_success: ok as f64 / total as f64,
    };
    table.add_row(vec![
        row.structure.clone(),
        row.scenario.clone(),
        row.failed_nodes.to_string(),
        row.failed_links.to_string(),
        fmt_f(row.largest_component, 3),
        fmt_f(row.routing_success, 3),
    ]);
    rows.push(row);
}

fn main() {
    let mut run = BenchRun::start("fig16_correlated");
    run.param("n", 4)
        .param("k", 2)
        .param("h", "2 3")
        .param("pairs_per_scenario", 400)
        .seed(0xFEE1);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 16: correlated outages (400 alive pairs per scenario)",
        &[
            "structure",
            "scenario",
            "nodes down",
            "links down",
            "largest comp",
            "route success",
        ],
    );
    for h in [2u32, 3] {
        let p = AbcccParams::new(4, 2, h).expect("params");
        run.topology(p.to_string());
        let topo = Abccc::new(p).expect("build");
        let net = topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEE1);

        evaluate(
            &topo,
            "4 racks lost",
            &correlated::fail_abccc_groups(&p, net, 4, &mut rng),
            &mut rows,
            &mut table,
        );
        evaluate(
            &topo,
            "level-1 firmware outage",
            &correlated::fail_abccc_level(&p, net, 1),
            &mut rows,
            &mut table,
        );
        evaluate(
            &topo,
            "32-cable bundle cut",
            &correlated::fail_cable_bundle(net, 32, &mut rng),
            &mut rows,
            &mut table,
        );
    }
    table.print();
    println!("(shape: rack losses and bundle cuts are absorbed — success tracks the");
    println!(" surviving component. A whole-level outage is the Achilles heel: the cube");
    println!(" partitions into n components, so deployments must diversify per level)");
    abccc_bench::emit_json("fig16_correlated", &rows);
    run.finish();
}
