//! **Figure 17** (routing ablation) — adversarial traffic and Valiant load
//! balancing: the convergent permutation forces all `m` flows of every
//! group through one uplink under deterministic shortest-path routing; VLB
//! trades path length for pattern-oblivious spreading. Both routers run
//! through the resilience campaign engine — the fault-free campaign gives
//! the headline max-min throughput, a 5%-switch-failure campaign gives the
//! route-completion rate of the same pattern under faults (both routers
//! are fault-oblivious, so completion is what degrades).

fn main() {
    abccc_bench::registry::shim_main("fig17_adversarial");
}
