//! **Figure 17** (routing ablation) — adversarial traffic and Valiant load
//! balancing: the convergent permutation forces all `m` flows of every
//! group through one uplink under deterministic shortest-path routing; VLB
//! trades path length for pattern-oblivious spreading. Both routers run
//! through the resilience campaign engine — the fault-free campaign gives
//! the headline max-min throughput, a 5%-switch-failure campaign gives the
//! route-completion rate of the same pattern under faults (both routers
//! are fault-oblivious, so completion is what degrades).

use abccc::{AbcccParams, PermStrategy};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_resilience::{CampaignConfig, PairSampling, RouterSpec, ScenarioKind};
use serde::Serialize;

const SEED: u64 = 0xAD7;
const FAULT_RATE: f64 = 0.05;

#[derive(Serialize)]
struct Row {
    structure: String,
    pattern: String,
    router: String,
    aggregate: f64,
    min_rate: f64,
    mean_hops: f64,
    completion_under_faults: f64,
}

fn campaign(
    p: AbcccParams,
    sampling: PairSampling,
    router: RouterSpec,
    switch_rate: f64,
) -> CampaignConfig {
    CampaignConfig::new(p)
        .scenario(ScenarioKind::Uniform {
            server_rate: 0.0,
            switch_rate,
            link_rate: 0.0,
        })
        .sampling(sampling)
        .router(router)
        .seed(SEED)
}

fn evaluate(
    p: AbcccParams,
    pattern: &str,
    sampling: PairSampling,
    router_label: &str,
    router: RouterSpec,
    rows: &mut Vec<Row>,
    table: &mut Table,
) {
    // Fault-free pass: the classic figure-17 numbers.
    let clean = campaign(p, sampling, router, 0.0)
        .trials(1)
        .run()
        .expect("fault-free campaign");
    // Faulted pass: how many pairs the fault-oblivious router still
    // completes.
    let faulted = campaign(p, sampling, router, FAULT_RATE)
        .trials(3)
        .run()
        .expect("faulted campaign");
    let t0 = &clean.trials[0];
    let row = Row {
        structure: clean.topology.clone(),
        pattern: pattern.into(),
        router: router_label.into(),
        aggregate: t0.aggregate_rate,
        min_rate: t0.min_rate,
        mean_hops: t0.mean_hops,
        completion_under_faults: faulted.summary.route_completion,
    };
    table.add_row(vec![
        row.structure.clone(),
        row.pattern.clone(),
        row.router.clone(),
        fmt_f(row.aggregate, 1),
        fmt_f(row.min_rate, 3),
        fmt_f(row.mean_hops, 2),
        fmt_f(row.completion_under_faults, 3),
    ]);
    rows.push(row);
}

fn main() {
    let mut run = BenchRun::start("fig17_adversarial");
    run.param("n", 4)
        .param("k", 2)
        .param("h", "2 3")
        .param("patterns", "convergent random-perm")
        .param("engine", "resilience campaign")
        .param("fault_rate", fmt_f(FAULT_RATE, 2))
        .seed(SEED);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 17: adversarial traffic — deterministic vs VLB routing",
        &[
            "structure",
            "pattern",
            "router",
            "aggregate Gbps",
            "min rate",
            "mean hops",
            "completion@5%",
        ],
    );
    for h in [2u32, 3] {
        let p = AbcccParams::new(4, 2, h).expect("params");
        run.topology(p.to_string());
        for (pattern, sampling) in [
            ("convergent", PairSampling::Convergent),
            ("random perm", PairSampling::Permutation),
        ] {
            evaluate(
                p,
                pattern,
                sampling,
                "direct",
                RouterSpec::Digit(PermStrategy::DestinationAware),
                &mut rows,
                &mut table,
            );
            evaluate(
                p,
                pattern,
                sampling,
                "VLB",
                RouterSpec::Vlb { seed: SEED },
                &mut rows,
                &mut table,
            );
        }
    }
    table.print();
    println!("(shape: VLB is pattern-OBLIVIOUS — its rates are nearly identical on");
    println!(" the crafted and the random pattern, unlike direct routing whose");
    println!(" aggregate collapses between them; the price is ~2× hops and roughly");
    println!(" halved aggregate, the textbook Valiant capacity factor. Use VLB as");
    println!(" insurance against worst-case patterns, not as the default)");
    abccc_bench::emit_json("fig17_adversarial", &rows);
    run.finish();
}
