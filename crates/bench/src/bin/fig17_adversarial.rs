//! **Figure 17** (routing ablation) — adversarial traffic and Valiant load
//! balancing: the convergent permutation forces all `m` flows of every
//! group through one uplink under deterministic shortest-path routing; VLB
//! trades path length for pattern-oblivious spreading. Throughput measured
//! with the max-min fair simulator.

use abccc::{routing, vlb, Abccc, AbcccParams, CubeLabel, PermStrategy, ServerAddr};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_workloads::traffic;
use flowsim::{max_min_allocation, DirectedLink};
use netgraph::{Route, Topology};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    pattern: String,
    router: String,
    max_link_load: u32,
    aggregate: f64,
    min_rate: f64,
    mean_hops: f64,
}

fn convergent_pairs(p: &AbcccParams) -> Vec<(ServerAddr, ServerAddr)> {
    let mut pairs = Vec::new();
    for raw in 0..p.label_space() {
        let label = CubeLabel(raw);
        let d0 = label.digit(p, 0);
        let dst = label.with_digit(p, 0, (d0 + 1) % p.n());
        for j in 0..p.group_size() {
            pairs.push((ServerAddr::new(p, label, j), ServerAddr::new(p, dst, j)));
        }
    }
    pairs
}

fn evaluate(
    topo: &Abccc,
    pattern: &str,
    router: &str,
    routes: Vec<Route>,
    rows: &mut Vec<Row>,
    table: &mut Table,
) {
    let net = topo.network();
    let load = dcn_metrics::load::link_load(net, &routes);
    let flows: Vec<Vec<DirectedLink>> = routes
        .iter()
        .map(|r| DirectedLink::of_route(net, r))
        .collect();
    let rates = max_min_allocation(net, &flows);
    let finite: Vec<f64> = rates.into_iter().filter(|r| r.is_finite()).collect();
    let mean_hops =
        routes.iter().map(|r| r.server_hops(net)).sum::<usize>() as f64 / routes.len() as f64;
    let row = Row {
        structure: topo.name(),
        pattern: pattern.into(),
        router: router.into(),
        max_link_load: load.max_load,
        aggregate: finite.iter().sum(),
        min_rate: finite.iter().copied().fold(f64::INFINITY, f64::min),
        mean_hops,
    };
    table.add_row(vec![
        row.structure.clone(),
        row.pattern.clone(),
        row.router.clone(),
        row.max_link_load.to_string(),
        fmt_f(row.aggregate, 1),
        fmt_f(row.min_rate, 3),
        fmt_f(row.mean_hops, 2),
    ]);
    rows.push(row);
}

fn main() {
    let mut run = BenchRun::start("fig17_adversarial");
    run.param("n", 4)
        .param("k", 2)
        .param("h", "2 3")
        .param("patterns", "convergent random-perm")
        .seed(0xAD7);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 17: adversarial traffic — deterministic vs VLB routing",
        &[
            "structure",
            "pattern",
            "router",
            "max load",
            "aggregate Gbps",
            "min rate",
            "mean hops",
        ],
    );
    for h in [2u32, 3] {
        let p = AbcccParams::new(4, 2, h).expect("params");
        run.topology(p.to_string());
        let topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xAD7);

        // Adversarial (convergent) pattern.
        let adv = convergent_pairs(&p);
        let direct: Vec<Route> = adv
            .iter()
            .map(|&(s, d)| routing::route_addrs(&p, s, d, &PermStrategy::DestinationAware))
            .collect();
        evaluate(&topo, "convergent", "direct", direct, &mut rows, &mut table);
        let vlb_routes: Vec<Route> = adv
            .iter()
            .map(|&(s, d)| vlb::route_vlb(&p, s, d, &mut rng))
            .collect();
        evaluate(
            &topo,
            "convergent",
            "VLB",
            vlb_routes,
            &mut rows,
            &mut table,
        );

        // Benign random permutation for reference.
        let perm = traffic::random_permutation(topo.network().server_count(), &mut rng);
        let direct_perm: Vec<Route> = perm
            .iter()
            .map(|&(s, d)| {
                routing::route_ids(&p, s, d, &PermStrategy::DestinationAware).expect("route")
            })
            .collect();
        evaluate(
            &topo,
            "random perm",
            "direct",
            direct_perm,
            &mut rows,
            &mut table,
        );
        let vlb_perm: Vec<Route> = perm
            .iter()
            .map(|&(s, d)| vlb::route_vlb_ids(&p, s, d, &mut rng).expect("route"))
            .collect();
        evaluate(&topo, "random perm", "VLB", vlb_perm, &mut rows, &mut table);
    }
    table.print();
    println!("(shape: VLB is pattern-OBLIVIOUS — its hot-link load and rates are nearly");
    println!(" identical on the crafted and the random pattern, unlike direct routing");
    println!(" whose load doubles between them; the price is ~2× hops and roughly");
    println!(" halved aggregate, the textbook Valiant capacity factor. Use VLB as");
    println!(" insurance against worst-case patterns, not as the default)");
    abccc_bench::emit_json("fig17_adversarial", &rows);
    run.finish();
}
