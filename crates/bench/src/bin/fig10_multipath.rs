//! **Figure 10** (ablation) — single-path vs multipath routing: max-min
//! fair rates when each flow stripes across the family's internally
//! disjoint parallel paths (the property BCCC/ABCCC advertise).

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::{BCube, BCubeParams};
use dcn_workloads::traffic;
use flowsim::FlowSim;
use netgraph::Topology;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    paths: usize,
    aggregate: f64,
    mean: f64,
    min: f64,
    abt: f64,
}

fn run<T: Topology>(topo: &T, rows: &mut Vec<Row>, table: &mut Table) {
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x3AB);
    let pairs = traffic::random_permutation(n, &mut rng);
    let sim = FlowSim::new(topo);
    for paths in [1usize, 2, 3] {
        let report = if paths == 1 {
            sim.run(&pairs).expect("run")
        } else {
            sim.run_multipath(&pairs, paths).expect("run")
        };
        let row = Row {
            structure: report.topology.clone(),
            paths,
            aggregate: report.aggregate_rate,
            mean: report.mean_rate,
            min: report.min_rate,
            abt: report.abt,
        };
        table.add_row(vec![
            row.structure.clone(),
            row.paths.to_string(),
            fmt_f(row.aggregate, 1),
            fmt_f(row.mean, 3),
            fmt_f(row.min, 3),
            fmt_f(row.abt, 1),
        ]);
        rows.push(row);
    }
}

fn main() {
    let mut bench = BenchRun::start("fig10_multipath");
    bench
        .param("paths_per_flow", "1 2 3")
        .param("structures", "ABCCC(4,2,2) ABCCC(4,2,3) BCube(4,2)")
        .seed(0x3AB);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 10: single-path vs multipath striping (random permutation)",
        &[
            "structure",
            "paths/flow",
            "aggregate Gbps",
            "per-flow mean",
            "per-flow min",
            "ABT",
        ],
    );
    run(
        &Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &Abccc::new(AbcccParams::new(4, 2, 3).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    run(
        &BCube::new(BCubeParams::new(4, 2).expect("params")).expect("build"),
        &mut rows,
        &mut table,
    );
    table.print();
    println!("(shape: striping lifts aggregate and mean per-flow throughput — the parallel");
    println!(" paths are physically disjoint, so a second path adds NIC-port bandwidth;");
    println!(" max-min fairness can trade some worst-flow rate for that aggregate gain)");
    abccc_bench::emit_json("fig10_multipath", &rows);
    bench.finish();
}
