//! **Figure 10** (ablation) — single-path vs multipath routing: max-min
//! fair rates when each flow stripes across the family's internally
//! disjoint parallel paths (the property BCCC/ABCCC advertise).

fn main() {
    abccc_bench::registry::shim_main("fig10_multipath");
}
