//! **Figure 8** — the ICC'15 companion experiment: how much does the
//! choice of digit-correction permutation matter? Mean path length and
//! mean crossbar (intra-group) hops per strategy, over sampled pairs.

fn main() {
    abccc_bench::registry::shim_main("fig8_permutations");
}
