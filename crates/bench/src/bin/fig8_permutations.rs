//! **Figure 8** — the ICC'15 companion experiment: how much does the
//! choice of digit-correction permutation matter? Mean path length and
//! mean crossbar (intra-group) hops per strategy, over sampled pairs.

use abccc::{routing, Abccc, AbcccParams, PermStrategy, ServerAddr};
use abccc_bench::{fmt_f, BenchRun, Table};
use rand::Rng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    structure: String,
    strategy: String,
    mean_hops: f64,
    mean_crossbar_hops: f64,
    max_hops: u32,
}

fn main() {
    let mut run = BenchRun::start("fig8_permutations");
    let pairs = 2000;
    run.param("pairs", pairs)
        .param("configs", "(4,2,2) (2,5,2) (4,3,3)")
        .seed(0x9E12);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Figure 8: permutation strategies (2000 random pairs each)",
        &[
            "structure",
            "strategy",
            "mean hops",
            "mean crossbar hops",
            "max hops",
        ],
    );
    for (n, k, h) in [(4, 2, 2), (2, 5, 2), (4, 3, 3)] {
        let p = AbcccParams::new(n, k, h).expect("params");
        run.topology(p.to_string());
        let _topo = Abccc::new(p).expect("build"); // ensures the config materializes
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x9E12);
        let sample: Vec<(ServerAddr, ServerAddr)> = (0..pairs)
            .map(|_| {
                let a = rng.gen_range(0..p.server_count());
                let b = loop {
                    let b = rng.gen_range(0..p.server_count());
                    if b != a {
                        break b;
                    }
                };
                (
                    ServerAddr::from_node_id(&p, netgraph::NodeId(a as u32)),
                    ServerAddr::from_node_id(&p, netgraph::NodeId(b as u32)),
                )
            })
            .collect();
        for strat in PermStrategy::all() {
            let router = abccc::DigitRouter::new(strat);
            let mut hop_sum = 0u64;
            let mut xbar_sum = 0u64;
            let mut max_hops = 0u32;
            for &(src, dst) in &sample {
                let r = router.route_addrs(&p, src, dst);
                let hops = routing::hops(&r) as u32;
                let diff = src.label.differing_levels(&p, dst.label).len() as u32;
                hop_sum += u64::from(hops);
                xbar_sum += u64::from(hops - diff); // crossbar hops = total − level crossings
                max_hops = max_hops.max(hops);
            }
            let row = Row {
                structure: p.to_string(),
                strategy: strat.label().to_string(),
                mean_hops: hop_sum as f64 / pairs as f64,
                mean_crossbar_hops: xbar_sum as f64 / pairs as f64,
                max_hops,
            };
            table.add_row(vec![
                row.structure.clone(),
                row.strategy.clone(),
                fmt_f(row.mean_hops, 3),
                fmt_f(row.mean_crossbar_hops, 3),
                row.max_hops.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!("(shape: destination-aware ≤ cyclic-from-source < greedy/ascending < random;");
    println!(" the gap is entirely in crossbar hops — level crossings are fixed by the digit set)");
    abccc_bench::emit_json("fig8_permutations", &rows);
    run.finish();
}
