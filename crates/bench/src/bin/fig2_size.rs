//! **Figure 2** — network size (number of servers) vs order `k` at fixed
//! component classes: ABCCC supports more servers than BCube from the same
//! `n`-port switches because each cube vertex hosts a whole group, while
//! DCell explodes doubly-exponentially and the fat-tree is capped at
//! `p³/4`.

fn main() {
    abccc_bench::registry::shim_main("fig2_size");
}
