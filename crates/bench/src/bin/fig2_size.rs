//! **Figure 2** — network size (number of servers) vs order `k` at fixed
//! component classes: ABCCC supports more servers than BCube from the same
//! `n`-port switches because each cube vertex hosts a whole group, while
//! DCell explodes doubly-exponentially and the fat-tree is capped at
//! `p³/4`.

use abccc::AbcccParams;
use abccc_bench::{BenchRun, Table};
use dcn_baselines::{BCubeParams, DCellParams, FatTreeParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    series: String,
    k: u32,
    servers: u64,
}

fn main() {
    let mut run = BenchRun::start("fig2_size");
    let n = 4;
    run.param("n", n)
        .param("k", "1..=6")
        .param("h", "2..=4")
        .param("fattree_p", 16);
    let mut points = Vec::new();
    let mut table = Table::new(
        "Figure 2: servers vs order k, n = 4 (fat-tree p=16 for reference)",
        &[
            "k",
            "ABCCC h=2",
            "ABCCC h=3",
            "ABCCC h=4",
            "BCube",
            "DCell",
            "FatTree(16)",
        ],
    );
    let ft = FatTreeParams::new(16).expect("params").server_count();
    for k in 1..=6u32 {
        let mut cells = vec![k.to_string()];
        for h in [2, 3, 4] {
            let p = AbcccParams::new(n, k, h).expect("params");
            cells.push(p.server_count().to_string());
            points.push(Point {
                series: format!("ABCCC h={h}"),
                k,
                servers: p.server_count(),
            });
        }
        let bc = BCubeParams::new(n, k).expect("params");
        cells.push(bc.server_count().to_string());
        points.push(Point {
            series: "BCube".into(),
            k,
            servers: bc.server_count(),
        });
        let dc = DCellParams::new(n, k.min(3)).map(|p| p.server_count());
        cells.push(dc.map_or("—".into(), |s| s.to_string()));
        cells.push(ft.to_string());
        table.add_row(cells);
    }
    table.print();
    println!("(shape: at equal k, ABCCC holds m× the servers of BCube on identical switches)");
    abccc_bench::emit_json("fig2_size", &points);
    run.finish();
}
