//! **Table 2** — capital expenditure at comparable scale (~0.4k–1k
//! servers): switch / NIC / cable spend and CAPEX per server under the
//! default 2015-commodity cost model.

fn main() {
    abccc_bench::registry::shim_main("table2_capex");
}
