//! **Table 2** — capital expenditure at comparable scale (~0.4k–1k
//! servers): switch / NIC / cable spend and CAPEX per server under the
//! default 2015-commodity cost model.

use abccc::{Abccc, AbcccParams};
use abccc_bench::{fmt_f, BenchRun, Table};
use dcn_baselines::*;
use dcn_metrics::{Capex, CostModel, TopologyStats};

fn main() {
    let mut run = BenchRun::start("table2_capex");
    run.param("scale", "~0.4k-1k servers");
    let cost = CostModel::default();
    let mut capexes: Vec<Capex> = Vec::new();

    let mut push = |stats: TopologyStats| capexes.push(cost.capex(&stats));

    push(TopologyStats::quick(
        &Abccc::new(AbcccParams::new(4, 3, 2).expect("params")).expect("build"),
    )); // 1024 servers
    push(TopologyStats::quick(
        &Abccc::new(AbcccParams::new(4, 3, 3).expect("params")).expect("build"),
    )); // 512 servers
    push(TopologyStats::quick(
        &Abccc::new(AbcccParams::new(4, 3, 5).expect("params")).expect("build"),
    )); // 256 servers (BCube endpoint)
    push(TopologyStats::quick(
        &Bccc::new(BcccParams::new(4, 3).expect("params")).expect("build"),
    ));
    push(TopologyStats::quick(
        &BCube::new(BCubeParams::new(4, 4).expect("params")).expect("build"),
    )); // 1024 servers
    push(TopologyStats::quick(
        &DCell::new(DCellParams::new(5, 2).expect("params")).expect("build"),
    )); // 930 servers
    push(TopologyStats::quick(
        &FatTree::new(FatTreeParams::new(16).expect("params")).expect("build"),
    )); // 1024 servers
    push(TopologyStats::quick(
        &Hypercube::new(HypercubeParams::new(4, 5).expect("params")).expect("build"),
    )); // 1024 servers

    let mut table = Table::new(
        "Table 2: CAPEX at comparable scale (default cost model, USD)",
        &[
            "structure",
            "servers",
            "switch $",
            "NIC $",
            "cable $",
            "total $",
            "$/server",
        ],
    );
    for c in &capexes {
        table.add_row(vec![
            c.name.clone(),
            c.servers.to_string(),
            fmt_f(c.switches_usd, 0),
            fmt_f(c.nics_usd, 0),
            fmt_f(c.cables_usd, 0),
            fmt_f(c.total(), 0),
            fmt_f(c.per_server(), 2),
        ]);
    }
    table.print();
    println!(
        "(cost model: NIC port ${}, cable ${}, switch tiers {:?})",
        cost.nic_port, cost.cable, cost.switch_port_tiers
    );
    abccc_bench::emit_json("table2_capex", &capexes);
    for c in &capexes {
        run.topology(c.name.clone());
    }
    run.finish();
}
