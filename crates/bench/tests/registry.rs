//! Registry + engine integration tests.
//!
//! Every registered experiment's tiny preset actually runs here: rows are
//! produced, the JSON rows artifact parses into a sequence of records with
//! a uniform schema, and the artifact bytes are identical whether the
//! engine ran on one thread or several.

use abccc_bench::engine::{run, RunOptions};
use abccc_bench::registry::{all, find, Preset};
use serde::Value;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// A scratch directory that is removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("abccc-registry-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn registry_names_are_unique_and_resolvable() {
    let specs = all();
    assert_eq!(specs.len(), 25, "the evaluation defines 25 experiments");
    let names: BTreeSet<&str> = specs.iter().map(|s| s.name()).collect();
    assert_eq!(
        names.len(),
        specs.len(),
        "duplicate experiment name registered"
    );
    for spec in specs {
        let found = find(spec.name()).expect("registered name must resolve");
        assert_eq!(found.name(), spec.name());
        assert!(!spec.paper_ref().is_empty());
        assert!(!spec.summary().is_empty());
        assert!(!spec.headers().is_empty());
    }
    assert!(find("no_such_experiment").is_none());
}

#[test]
fn every_spec_declares_a_nonempty_tiny_grid() {
    for spec in all() {
        let points = spec.points(Preset::Tiny);
        assert!(!points.is_empty(), "{}: empty tiny grid", spec.name());
        for (i, p) in points.iter().enumerate() {
            assert!(!p.label.is_empty(), "{}[{i}]: empty label", spec.name());
        }
    }
}

#[test]
fn point_seeds_are_deterministic() {
    for spec in all() {
        for i in 0..spec.points(Preset::Tiny).len() {
            assert_eq!(
                spec.point_seed(Preset::Tiny, i),
                spec.point_seed(Preset::Tiny, i),
                "{}[{i}]: unstable seed",
                spec.name()
            );
        }
    }
}

/// The tentpole guarantee: the full tiny sweep succeeds, every experiment
/// produces rows, every rows artifact is schema-valid JSON, and the bytes
/// are identical at 1 vs 4 worker threads. Manifests are provenance (they
/// carry wall-clock timings) and are excluded from the byte comparison.
#[test]
fn tiny_sweep_is_deterministic_across_thread_counts() {
    let dir_a = Scratch::new("t1");
    let dir_b = Scratch::new("t4");
    let specs = all();

    let base = RunOptions {
        preset: Preset::Tiny,
        print_tables: false,
        print_summary: false,
        ..Default::default()
    };
    let report_a = run(
        specs,
        &RunOptions {
            threads: 1,
            json_dir: Some(dir_a.0.clone()),
            ..base.clone()
        },
    )
    .expect("single-threaded tiny sweep");
    let report_b = run(
        specs,
        &RunOptions {
            threads: 4,
            json_dir: Some(dir_b.0.clone()),
            ..base
        },
    )
    .expect("multi-threaded tiny sweep");

    assert_eq!(report_a.experiments.len(), specs.len());
    assert_eq!(report_b.experiments.len(), specs.len());

    for (spec, outcome) in specs.iter().zip(&report_a.experiments) {
        assert_eq!(outcome.name, spec.name());
        assert!(outcome.rows > 0, "{}: produced no rows", spec.name());
        assert!(outcome.records > 0, "{}: produced no records", spec.name());

        let rows_a = std::fs::read(dir_a.0.join(format!("{}.json", spec.name())))
            .unwrap_or_else(|e| panic!("{}: missing rows artifact: {e}", spec.name()));
        let rows_b = std::fs::read(dir_b.0.join(format!("{}.json", spec.name())))
            .unwrap_or_else(|e| panic!("{}: missing rows artifact: {e}", spec.name()));
        assert_eq!(
            rows_a,
            rows_b,
            "{}: rows artifact differs between 1 and 4 threads",
            spec.name()
        );

        // Schema check: a sequence of records whose key sets agree.
        let text = String::from_utf8(rows_a).expect("rows artifact is UTF-8");
        let value: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: rows artifact does not parse: {e:?}", spec.name()));
        let Value::Seq(records) = value else {
            panic!("{}: rows artifact is not a JSON array", spec.name());
        };
        assert_eq!(
            records.len(),
            outcome.records,
            "{}: record count mismatch",
            spec.name()
        );
        let mut first_keys: Option<BTreeSet<String>> = None;
        for record in &records {
            let Value::Map(entries) = record else {
                panic!("{}: record is not a JSON object", spec.name());
            };
            let keys: BTreeSet<String> = entries.iter().map(|(k, _)| k.clone()).collect();
            assert!(!keys.is_empty(), "{}: record with no fields", spec.name());
            match &first_keys {
                None => first_keys = Some(keys),
                Some(expected) => assert_eq!(
                    &keys,
                    expected,
                    "{}: records disagree on schema",
                    spec.name()
                ),
            }
        }

        // Manifests exist for each experiment (contents carry timings, so
        // no byte comparison here).
        for dir in [&dir_a.0, &dir_b.0] {
            let manifest = dir.join(format!("{}.manifest.json", spec.name()));
            assert!(manifest.is_file(), "{}: missing manifest", spec.name());
        }
    }

    // The shared cache must actually be shared: the sweep touches the same
    // small topologies from many experiments.
    assert!(
        report_a.cache_hits > 0,
        "tiny sweep never reused a cached topology (hits=0, misses={})",
        report_a.cache_misses
    );
}

/// The engine creates the artifact directory if missing (satellite 2) and
/// hard-errors when it cannot.
#[test]
fn engine_creates_missing_artifact_dir() {
    let scratch = Scratch::new("mkdir");
    let nested = scratch.0.join("a/b/c");
    let spec = find("table1_properties").expect("registered");
    let opts = RunOptions {
        preset: Preset::Tiny,
        threads: 1,
        json_dir: Some(nested.clone()),
        print_tables: false,
        print_summary: false,
    };
    let report = run(&[spec], &opts).expect("engine run with missing dir");
    assert_eq!(report.experiments.len(), 1);
    assert!(nested.join("table1_properties.json").is_file());
    assert!(nested.join("table1_properties.manifest.json").is_file());
}
