//! Criterion: one-to-one routing hot path — route construction per pair,
//! per permutation strategy, parallel path sets, and fault-tolerant
//! detours.

use abccc::{Abccc, AbcccParams, PermStrategy, Router};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netgraph::{NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;

fn pairs(p: &AbcccParams, count: usize) -> Vec<(NodeId, NodeId)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..p.server_count()) as u32;
            let b = loop {
                let b = rng.gen_range(0..p.server_count()) as u32;
                if b != a {
                    break b;
                }
            };
            (NodeId(a), NodeId(b))
        })
        .collect()
}

fn bench_routing(c: &mut Criterion) {
    let p = AbcccParams::new(8, 3, 3).expect("params"); // 8192 servers
    let sample = pairs(&p, 256);

    let mut g = c.benchmark_group("route_one_to_one");
    for strat in [
        PermStrategy::DestinationAware,
        PermStrategy::Ascending,
        PermStrategy::Random(7),
    ] {
        g.bench_with_input(
            BenchmarkId::new("abccc_8192srv", strat.label()),
            &strat,
            |b, s| {
                let router = abccc::DigitRouter::new(*s);
                let mut i = 0;
                b.iter(|| {
                    let (src, dst) = sample[i % sample.len()];
                    i += 1;
                    router.route_ids(&p, src, dst).expect("route")
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("route_extras");
    g.sample_size(20);
    let small = AbcccParams::new(4, 2, 2).expect("params");
    let topo = Abccc::new(small).expect("build");
    let small_pairs = pairs(&small, 64);
    g.bench_function("parallel_routes_x4", |b| {
        let mut i = 0;
        b.iter(|| {
            let (src, dst) = small_pairs[i % small_pairs.len()];
            i += 1;
            abccc::parallel::parallel_routes(
                &small,
                abccc::ServerAddr::from_node_id(&small, src),
                abccc::ServerAddr::from_node_id(&small, dst),
                4,
            )
        })
    });
    let mask = netgraph::FaultScenario::seeded(13)
        .fail_servers_frac(0.1)
        .build(topo.network());
    g.bench_function("broadcast_one_to_all_192srv", |b| {
        b.iter(|| abccc::broadcast::one_to_all(&small, NodeId(0)).expect("tree"))
    });
    g.bench_function("fault_tolerant_route_10pct", |b| {
        let router = abccc::ResilientRouter::default();
        let alive: Vec<(NodeId, NodeId)> = small_pairs
            .iter()
            .copied()
            .filter(|&(s, d)| mask.node_alive(s) && mask.node_alive(d))
            .collect();
        let mut i = 0;
        b.iter(|| {
            let (src, dst) = alive[i % alive.len()];
            i += 1;
            let _ = router.route(&topo, src, dst, Some(&mask));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
