//! Before/after perf harness for the CSR + fused distance engine.
//!
//! Benchmarks three phases — network construction, single-source
//! server-hop BFS, and the all-pairs measure (diameter + average path
//! length) — against a faithful reconstruction of the seed
//! implementation: `Vec<Vec<_>>` adjacency, a fresh distance vector per
//! source, statically chunked threads, and one full sweep *per metric*.
//!
//! Results are written machine-readable to
//! `bench_results/perf_trajectory.json` (relative to the workspace root),
//! including the seed→engine speedup per phase.

use abccc::{Abccc, AbcccParams};
use criterion::{criterion_group, criterion_main, Criterion};
use netgraph::{BfsScratch, DistanceEngine, LinkId, Network, NodeId, Topology};
use serde::Value;
use std::collections::VecDeque;

/// The pre-CSR implementation, reconstructed for an honest baseline.
mod seed_reference {
    use super::*;

    /// Seed adjacency: one heap vector per node.
    pub struct VecAdj {
        adj: Vec<Vec<(NodeId, LinkId)>>,
        servers: Vec<NodeId>,
        is_server: Vec<bool>,
    }

    impl VecAdj {
        pub fn new(net: &Network) -> Self {
            let mut adj = vec![Vec::new(); net.node_count()];
            for (i, l) in net.links().iter().enumerate() {
                let id = LinkId(i as u32);
                adj[l.a.index()].push((l.b, id));
                adj[l.b.index()].push((l.a, id));
            }
            VecAdj {
                adj,
                servers: net.server_ids().collect(),
                is_server: net.node_ids().map(|n| net.is_server(n)).collect(),
            }
        }

        /// Seed single-source 0–1 BFS: allocates a fresh distance vector.
        pub fn server_hop_distances(&self, src: NodeId) -> Vec<u32> {
            let mut dist = vec![u32::MAX; self.adj.len()];
            dist[src.index()] = 0;
            let mut dq = VecDeque::new();
            dq.push_back(src);
            while let Some(u) = dq.pop_front() {
                let du = dist[u.index()];
                for &(v, _) in &self.adj[u.index()] {
                    let w = u32::from(self.is_server[v.index()]);
                    let nd = du + w;
                    if nd < dist[v.index()] {
                        dist[v.index()] = nd;
                        if w == 0 {
                            dq.push_front(v);
                        } else {
                            dq.push_back(v);
                        }
                    }
                }
            }
            dist
        }

        /// Seed parallel driver: static chunking, no work stealing.
        fn for_each_server<T: Send, F: Fn(&[u32]) -> T + Sync>(&self, f: F) -> Vec<T> {
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .min(self.servers.len());
            let chunk = self.servers.len().div_ceil(threads);
            let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None)
                .take(self.servers.len())
                .collect();
            let f = &f;
            std::thread::scope(|scope| {
                for (srv, slot) in self.servers.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (s, o) in srv.iter().zip(slot.iter_mut()) {
                            *o = Some(f(&self.server_hop_distances(*s)));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("slot filled")).collect()
        }

        /// Seed `TopologyStats::measure` hot path: one full all-pairs
        /// sweep for the diameter, then a second for the APL.
        pub fn two_pass_measure(&self) -> (u32, f64) {
            let eccs = self.for_each_server(|dist| {
                self.servers
                    .iter()
                    .map(|t| dist[t.index()])
                    .max()
                    .unwrap_or(0)
            });
            let diameter = eccs.into_iter().max().unwrap_or(0);
            let sums = self.for_each_server(|dist| {
                self.servers
                    .iter()
                    .map(|t| u64::from(dist[t.index()]))
                    .sum::<u64>()
            });
            let n = self.servers.len() as f64;
            let apl = sums.into_iter().sum::<u64>() as f64 / (n * (n - 1.0));
            (diameter, apl)
        }
    }
}

fn bench_perf_trajectory(c: &mut Criterion) {
    let params = AbcccParams::new(4, 2, 2).expect("params");
    let topo = Abccc::new(params).expect("build");
    let net = topo.network();
    let reference = seed_reference::VecAdj::new(net);
    // Cross-check before timing: both paths must agree exactly.
    let (ref_diam, ref_apl) = reference.two_pass_measure();
    let fused = DistanceEngine::new(net).all_pairs().expect("connected");
    assert_eq!((ref_diam, ref_apl), (fused.diameter, fused.avg_path_length));

    let mut g = c.benchmark_group("perf_trajectory");
    g.sample_size(20);
    g.bench_function("construction/abccc_4_2_2", |b| {
        b.iter(|| Abccc::new(params).expect("build"))
    });
    g.bench_function("single_source/seed_vecadj_alloc", |b| {
        b.iter(|| reference.server_hop_distances(NodeId(0)))
    });
    g.bench_function("single_source/engine_csr_scratch", |b| {
        let engine = DistanceEngine::new(net);
        let mut scratch = BfsScratch::new();
        b.iter(|| engine.distances_into(NodeId(0), &mut scratch))
    });
    g.bench_function("all_pairs_measure/seed_two_pass", |b| {
        b.iter(|| reference.two_pass_measure())
    });
    g.bench_function("all_pairs_measure/engine_fused", |b| {
        b.iter(|| DistanceEngine::new(net).all_pairs().expect("connected"))
    });
    g.bench_function("all_pairs_measure/engine_fused_with_load", |b| {
        b.iter(|| {
            DistanceEngine::new(net)
                .all_pairs_with_load()
                .expect("connected")
        })
    });
    g.finish();

    write_json(c, net.server_count());
}

fn median_of<'m>(
    ms: &'m [criterion::Measurement],
    suffix: &str,
) -> Option<&'m criterion::Measurement> {
    ms.iter().find(|m| m.id.ends_with(suffix))
}

fn write_json(c: &mut Criterion, servers: usize) {
    let ms = c.take_measurements();
    let mut entries = Vec::new();
    for m in &ms {
        entries.push(Value::Map(vec![
            ("id".to_string(), Value::Str(m.id.clone())),
            ("median_ns".to_string(), Value::F64(m.median_ns)),
            ("mean_ns".to_string(), Value::F64(m.mean_ns)),
            ("iterations".to_string(), Value::U64(m.iterations)),
        ]));
    }
    let mut speedups = Vec::new();
    for (label, before, after) in [
        (
            "single_source_bfs",
            "single_source/seed_vecadj_alloc",
            "single_source/engine_csr_scratch",
        ),
        (
            "all_pairs_measure",
            "all_pairs_measure/seed_two_pass",
            "all_pairs_measure/engine_fused",
        ),
    ] {
        if let (Some(b), Some(a)) = (median_of(&ms, before), median_of(&ms, after)) {
            speedups.push((label.to_string(), Value::F64(b.median_ns / a.median_ns)));
        }
    }
    let doc = Value::Map(vec![
        (
            "topology".to_string(),
            Value::Str("ABCCC(4,2,2)".to_string()),
        ),
        ("servers".to_string(), Value::U64(servers as u64)),
        ("measurements".to_string(), Value::Seq(entries)),
        ("speedups".to_string(), Value::Map(speedups)),
    ]);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    let path = dir.join("perf_trajectory.json");
    std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("render"))
        .expect("write perf_trajectory.json");
    println!("\nwrote {}", path.display());
}

criterion_group!(benches, bench_perf_trajectory);
criterion_main!(benches);
