//! Compiled-FIB route-service throughput harness.
//!
//! Benchmarks single lookups and batched queries against on-demand
//! `DigitRouter` routing on the paper-preset ABCCC(4,2,2), plus the faulted
//! lookup path. Results are written machine-readable to
//! `bench_results/fib_service.json` (relative to the workspace root),
//! including the on-demand → compiled speedup the route service exists to
//! deliver.

use abccc::{Abccc, AbcccParams, DigitRouter, Router};
use criterion::{criterion_group, criterion_main, Criterion};
use dcn_fib::RouteService;
use netgraph::{FaultScenario, NodeId, Topology};
use rand::{Rng, SeedableRng};
use serde::Value;

const PAIRS: usize = 4096;

fn sample_pairs(servers: u64, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..PAIRS)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..servers) as u32),
                NodeId(rng.gen_range(0..servers) as u32),
            )
        })
        .collect()
}

fn bench_fib_service(c: &mut Criterion) {
    let params = AbcccParams::new(4, 2, 2).expect("params");
    let topo = Abccc::new(params).expect("build");
    let pairs = sample_pairs(params.server_count(), 21);
    let mask = FaultScenario::seeded(21)
        .fail_servers_frac(0.05)
        .build(topo.network());

    let svc = RouteService::compile(topo, 8).expect("service");
    let digit = DigitRouter::shortest();
    let topo_ref = svc.topo();

    // Cross-check before timing: compiled answers must equal on-demand.
    for &(s, d) in &pairs {
        assert_eq!(
            svc.query(s, d).expect("compiled"),
            digit.route(topo_ref, s, d, None).expect("on-demand"),
        );
    }

    let mut g = c.benchmark_group("fib_service");
    g.sample_size(20);
    g.bench_function("compile/abccc_4_2_2", |b| {
        let fresh = Abccc::new(params).expect("build");
        b.iter(|| dcn_fib::compile_shortest(&fresh).expect("compile"))
    });
    g.bench_function("lookup/compiled_table_walk", |b| {
        // The raw data-plane lookup: a port-indexed table walk into a
        // reused buffer, the way a switch ASIC or DPDK worker would use
        // the compiled FIB — no allocation, no telemetry, no outcome.
        let fib = svc.table();
        let net = topo_ref.network();
        let mut buf = Vec::with_capacity(32);
        let mut i = 0usize;
        b.iter(|| {
            let (s, d) = pairs[i % PAIRS];
            i += 1;
            buf.clear();
            fib.walk_into(net, s, d, &mut buf);
            buf.len()
        })
    });
    g.bench_function("lookup/compiled_single", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, d) = pairs[i % PAIRS];
            i += 1;
            svc.query(s, d).expect("compiled")
        })
    });
    g.bench_function("lookup/on_demand_digit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, d) = pairs[i % PAIRS];
            i += 1;
            digit.route(topo_ref, s, d, None).expect("on-demand")
        })
    });
    g.bench_function("batch/compiled_4096", |b| {
        b.iter(|| svc.query_batch(&pairs))
    });

    let mut faulted =
        RouteService::compile(Abccc::new(params).expect("build"), 8).expect("service");
    faulted.apply_mask(mask.clone());
    faulted.query_batch(&pairs); // warm the patch caches
    g.bench_function("lookup/compiled_faulted", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, d) = pairs[i % PAIRS];
            i += 1;
            faulted.query(s, d)
        })
    });
    g.finish();

    write_json(c, params.server_count());
}

fn median_of<'m>(
    ms: &'m [criterion::Measurement],
    suffix: &str,
) -> Option<&'m criterion::Measurement> {
    ms.iter().find(|m| m.id.ends_with(suffix))
}

fn write_json(c: &mut Criterion, servers: u64) {
    let ms = c.take_measurements();
    let mut entries = Vec::new();
    for m in &ms {
        entries.push(Value::Map(vec![
            ("id".to_string(), Value::Str(m.id.clone())),
            ("median_ns".to_string(), Value::F64(m.median_ns)),
            ("mean_ns".to_string(), Value::F64(m.mean_ns)),
            ("iterations".to_string(), Value::U64(m.iterations)),
        ]));
    }
    let mut speedups = Vec::new();
    if let (Some(before), Some(after)) = (
        median_of(&ms, "lookup/on_demand_digit"),
        median_of(&ms, "lookup/compiled_table_walk"),
    ) {
        speedups.push((
            "compiled_vs_on_demand".to_string(),
            Value::F64(before.median_ns / after.median_ns),
        ));
    }
    if let (Some(before), Some(after)) = (
        median_of(&ms, "lookup/on_demand_digit"),
        median_of(&ms, "lookup/compiled_single"),
    ) {
        speedups.push((
            "service_vs_on_demand".to_string(),
            Value::F64(before.median_ns / after.median_ns),
        ));
    }
    let doc = Value::Map(vec![
        (
            "topology".to_string(),
            Value::Str("ABCCC(4,2,2)".to_string()),
        ),
        ("servers".to_string(), Value::U64(servers)),
        ("pairs".to_string(), Value::U64(PAIRS as u64)),
        ("measurements".to_string(), Value::Seq(entries)),
        ("speedups".to_string(), Value::Map(speedups)),
    ]);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    let path = dir.join("fib_service.json");
    std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("render"))
        .expect("write fib_service.json");
    println!("\nwrote {}", path.display());
}

criterion_group!(benches, bench_fib_service);
criterion_main!(benches);
