//! Criterion: topology construction time across families and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_baselines::prelude::{BCube, BCubeParams, DCell, DCellParams, FatTree, FatTreeParams};

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);

    for (n, k, h) in [(4, 2, 2), (4, 3, 2), (4, 3, 3), (8, 2, 3)] {
        let p = abccc::AbcccParams::new(n, k, h).expect("params");
        g.bench_with_input(
            BenchmarkId::new("abccc", format!("{p} ({} srv)", p.server_count())),
            &p,
            |b, p| b.iter(|| abccc::Abccc::new(*p).expect("build")),
        );
    }
    for (n, k) in [(4, 2), (4, 3), (8, 2)] {
        let p = BCubeParams::new(n, k).expect("params");
        g.bench_with_input(
            BenchmarkId::new("bcube", format!("{p} ({} srv)", p.server_count())),
            &p,
            |b, p| b.iter(|| BCube::new(*p).expect("build")),
        );
    }
    {
        let p = DCellParams::new(4, 2).expect("params");
        g.bench_with_input(
            BenchmarkId::new("dcell", format!("{p} ({} srv)", p.server_count())),
            &p,
            |b, p| b.iter(|| DCell::new(p.clone()).expect("build")),
        );
    }
    {
        let p = FatTreeParams::new(16).expect("params");
        g.bench_with_input(
            BenchmarkId::new("fattree", format!("{p} ({} srv)", p.server_count())),
            &p,
            |b, p| b.iter(|| FatTree::new(*p).expect("build")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
