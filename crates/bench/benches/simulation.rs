//! Criterion: simulator throughput — max-min fair allocation and the
//! packet-level event loop.

use abccc::{Abccc, AbcccParams};
use criterion::{criterion_group, criterion_main, Criterion};
use netgraph::Topology;
use rand::SeedableRng;

fn bench_simulation(c: &mut Criterion) {
    let topo = Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build");
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let perm = dcn_workloads::traffic::random_permutation(n, &mut rng);

    let mut g = c.benchmark_group("simulation");
    g.sample_size(20);
    g.bench_function("flowsim_maxmin_permutation_192flows", |b| {
        b.iter(|| dcn_sim::FlowSim::new(&topo).run(&perm).expect("run"))
    });

    let flows: Vec<dcn_sim::FlowSpec> = perm
        .iter()
        .take(32)
        .map(|&(s, d)| dcn_sim::FlowSpec::bulk(s, d, 50))
        .collect();
    g.bench_function("packetsim_32flows_x50pkts", |b| {
        b.iter(|| {
            dcn_sim::PacketSim::new(&topo, dcn_sim::PacketSimConfig::default())
                .run(&flows)
                .expect("run")
        })
    });
    g.bench_function("packetsim_aimd_32flows_x50pkts", |b| {
        b.iter(|| {
            dcn_sim::PacketSim::new(&topo, dcn_sim::PacketSimConfig::default())
                .run_aimd(&flows, dcn_sim::AimdConfig::default())
                .expect("run")
        })
    });
    g.bench_function("flowsim_multipath_x2", |b| {
        b.iter(|| {
            dcn_sim::FlowSim::new(&topo)
                .run_multipath(&perm, 2)
                .expect("run")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
