//! Criterion: graph-metric engines — BFS diameter (parallel all-sources)
//! and max-flow bisection.

use abccc::{Abccc, AbcccParams};
use criterion::{criterion_group, criterion_main, Criterion};
use netgraph::Topology;

fn bench_graph_metrics(c: &mut Criterion) {
    let topo = Abccc::new(AbcccParams::new(4, 2, 2).expect("params")).expect("build");

    let mut g = c.benchmark_group("graph_metrics");
    g.sample_size(10);
    g.bench_function("bfs_single_source_192srv", |b| {
        b.iter(|| netgraph::bfs::server_hop_distances(topo.network(), netgraph::NodeId(0), None))
    });
    g.bench_function("bfs_single_source_scratch_192srv", |b| {
        let engine = netgraph::DistanceEngine::new(topo.network());
        let mut scratch = netgraph::BfsScratch::new();
        b.iter(|| engine.distances_into(netgraph::NodeId(0), &mut scratch))
    });
    g.bench_function("diameter_exact_192srv", |b| {
        b.iter(|| netgraph::bfs::server_diameter(topo.network()).expect("connected"))
    });
    g.bench_function("all_pairs_fused_192srv", |b| {
        b.iter(|| {
            netgraph::DistanceEngine::new(topo.network())
                .all_pairs()
                .expect("connected")
        })
    });
    g.bench_function("bisection_maxflow_192srv", |b| {
        b.iter(|| dcn_metrics::bisection::exact_bisection_by_id(topo.network()))
    });
    g.bench_function("vertex_disjoint_paths_exact", |b| {
        b.iter(|| {
            netgraph::paths::vertex_disjoint_paths(
                topo.network(),
                netgraph::NodeId(0),
                netgraph::NodeId(191),
                usize::MAX,
                None,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_graph_metrics);
criterion_main!(benches);
