//! Micro-benchmark enforcing the telemetry cost contract: with recording
//! disabled (the default), a span guard or a counter/histogram touch must
//! cost only a few nanoseconds — one relaxed atomic load plus a cached
//! call-site lookup. The enabled paths are timed alongside for reference.
//!
//! `ABCCC_SMOKE=1` shrinks the sample count so `scripts/check.sh` can run
//! this as a fast gate; the disabled-path assertion still fires.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Generous ceiling for the disabled paths — "a few ns" with headroom for
/// slow shared CI machines. A regression to a lock, a heap write, or an
/// uncached registry lookup lands well above this.
const DISABLED_MEDIAN_CEILING_NS: f64 = 50.0;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let smoke = std::env::var("ABCCC_SMOKE").is_ok();
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(if smoke { 5 } else { 20 });

    dcn_telemetry::set_enabled(false);
    g.bench_function("disabled/span_guard", |b| {
        b.iter(|| dcn_telemetry::span!("bench.overhead.span"))
    });
    g.bench_function("disabled/counter_inc", |b| {
        b.iter(|| dcn_telemetry::counter!("bench.overhead.counter").inc())
    });
    g.bench_function("disabled/histogram_record", |b| {
        b.iter(|| dcn_telemetry::histogram!("bench.overhead.hist").record(black_box(42)))
    });

    dcn_telemetry::set_enabled(true);
    g.bench_function("enabled/span_guard", |b| {
        b.iter(|| dcn_telemetry::span!("bench.overhead.span"))
    });
    g.bench_function("enabled/counter_inc", |b| {
        b.iter(|| dcn_telemetry::counter!("bench.overhead.counter").inc())
    });
    g.bench_function("enabled/histogram_record", |b| {
        b.iter(|| dcn_telemetry::histogram!("bench.overhead.hist").record(black_box(42)))
    });
    dcn_telemetry::set_enabled(false);
    // The enabled span runs filled the thread-local buffers; discard them.
    let _ = dcn_telemetry::drain_spans();
    g.finish();

    let measurements = c.take_measurements();
    let mut checked = 0usize;
    for m in &measurements {
        if m.id.contains("/disabled/") {
            checked += 1;
            assert!(
                m.median_ns < DISABLED_MEDIAN_CEILING_NS,
                "disabled-telemetry contract violated: {} median {:.1} ns \
                 (ceiling {DISABLED_MEDIAN_CEILING_NS} ns)",
                m.id,
                m.median_ns
            );
        }
    }
    assert_eq!(checked, 3, "expected three disabled-path measurements");
    println!("\ndisabled-path contract: all {checked} medians < {DISABLED_MEDIAN_CEILING_NS} ns");
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
