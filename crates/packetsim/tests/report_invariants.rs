//! Integration invariants for the packet-level report: aggregate totals
//! must equal the per-flow accounting, conservation must hold for every
//! flow (offered = delivered + dropped + in-flight-at-horizon), and the
//! telemetry counters must advance by exactly the report's totals.

use abccc::{Abccc, AbcccParams};
use netgraph::Topology;
use packetsim::{FlowSpec, PacketSim, PacketSimConfig};
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// dcn-telemetry state is process-global: serialize the tests in this
/// binary that enable recording and read counter deltas.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run_shuffle(buffer_packets: u32) -> packetsim::PacketSimReport {
    let topo = Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap();
    let n = topo.network().server_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x8E9);
    let pairs = dcn_workloads::traffic::shuffle(n, 6, 6, &mut rng);
    let specs: Vec<FlowSpec> = pairs
        .iter()
        .map(|&(s, d)| FlowSpec::bulk(s, d, 40))
        .collect();
    let cfg = PacketSimConfig {
        buffer_packets,
        ..Default::default()
    };
    PacketSim::new(&topo, cfg).run(&specs).expect("run")
}

/// Report totals are exactly the sums of the per-flow outcomes, and each
/// flow conserves packets.
#[test]
fn report_totals_match_per_flow_outcomes() {
    let _l = lock();
    // Tiny buffers so the congested shuffle actually drops packets and
    // the dropped-side accounting is exercised too.
    let report = run_shuffle(4);

    let delivered: u64 = report.per_flow.iter().map(|f| f.delivered).sum();
    let dropped: u64 = report.per_flow.iter().map(|f| f.dropped).sum();
    assert_eq!(report.delivered, delivered, "aggregate delivered");
    assert_eq!(report.dropped, dropped, "aggregate dropped");
    assert!(
        report.dropped > 0,
        "4-packet buffers must drop under 6×6 shuffle"
    );

    for f in &report.per_flow {
        assert!(
            f.delivered + f.dropped <= f.offered,
            "flow {:?}->{:?}: delivered {} + dropped {} > offered {}",
            f.src,
            f.dst,
            f.delivered,
            f.dropped,
            f.offered
        );
        if f.complete() {
            assert_eq!(f.delivered, f.offered);
            assert!(f.completion_ns <= report.makespan_ns);
        }
    }

    let loss = report.loss_rate();
    let expected = dropped as f64 / (delivered + dropped) as f64;
    assert!(
        (loss - expected).abs() < 1e-12,
        "loss_rate {loss} vs {expected}"
    );
}

/// The packetsim.delivered / packetsim.dropped / packetsim.events
/// counters advance by exactly what the report claims.
#[test]
fn counters_match_report() {
    let _l = lock();
    let reg = dcn_telemetry::registry();
    let delivered_before = reg.counter("packetsim.delivered").get();
    let dropped_before = reg.counter("packetsim.dropped").get();
    let events_before = reg.counter("packetsim.events").get();
    let runs_before = reg.counter("packetsim.runs").get();

    dcn_telemetry::set_enabled(true);
    let live = dcn_telemetry::enabled(); // false when built with `noop`
    let report = run_shuffle(64);
    dcn_telemetry::set_enabled(false);

    if live {
        assert_eq!(
            reg.counter("packetsim.delivered").get() - delivered_before,
            report.delivered
        );
        assert_eq!(
            reg.counter("packetsim.dropped").get() - dropped_before,
            report.dropped
        );
        assert_eq!(reg.counter("packetsim.runs").get() - runs_before, 1);
        // Every delivered packet takes ≥ 1 event; drops may or may not.
        let events = reg.counter("packetsim.events").get() - events_before;
        assert!(
            events >= report.delivered,
            "events {events} < delivered {}",
            report.delivered
        );
    }
}
