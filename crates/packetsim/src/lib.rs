//! # packetsim — discrete-event packet-level simulator
//!
//! A compact store-and-forward simulator for validating the flow-level
//! results at packet granularity: FIFO output queues per directed link,
//! finite buffers with tail drop, per-packet latency accounting. Packets
//! follow the node path produced by the topology's native routing, so the
//! simulator exercises exactly the algorithms the paper proposes.
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use packetsim::{PacketSim, PacketSimConfig, FlowSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Abccc::new(AbcccParams::new(2, 1, 2)?)?;
//! let flows = vec![FlowSpec::bulk(netgraph::NodeId(0), netgraph::NodeId(7), 100)];
//! let report = PacketSim::new(&topo, PacketSimConfig::default()).run(&flows)?;
//! assert_eq!(report.delivered, 100);
//! assert_eq!(report.dropped, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cc;
mod report;
mod sim;

pub use cc::AimdConfig;
pub use report::{FlowOutcome, PacketSimReport};
pub use sim::{FlowSpec, PacketSim, PacketSimConfig};
