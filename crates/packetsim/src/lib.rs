//! # packetsim — compatibility shim over [`dcn_sim`]
//!
//! The packet-level simulator now lives in the unified traffic engine
//! (`dcn-sim`): one discrete-event loop drives both the historical open
//! loop and the AIMD closed loop, plus fault timelines and
//! bulk-synchronous phases the old crate never had. This crate re-exports
//! the historical API unchanged, so existing callers keep compiling; new
//! code should depend on `dcn-sim` directly and consider the
//! scenario-level [`dcn_sim::TrafficEngine`].
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use packetsim::{PacketSim, PacketSimConfig, FlowSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Abccc::new(AbcccParams::new(2, 1, 2)?)?;
//! let flows = vec![FlowSpec::bulk(netgraph::NodeId(0), netgraph::NodeId(7), 100)];
//! let report = PacketSim::new(&topo, PacketSimConfig::default()).run(&flows)?;
//! assert_eq!(report.delivered, 100);
//! assert_eq!(report.dropped, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcn_sim::{AimdConfig, FlowOutcome, FlowSpec, PacketSim, PacketSimConfig, PacketSimReport};
