//! The discrete-event engine.

use crate::PacketSimReport;
use netgraph::{LinkId, NodeId, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSimConfig {
    /// Link rate in Gbit/s (every link; the topology's capacities are
    /// interpreted as multiples of this).
    pub link_gbps: f64,
    /// Packet size in bytes (headers included).
    pub packet_bytes: u32,
    /// Output-queue capacity per directed link, in packets (tail drop).
    pub buffer_packets: u32,
    /// Per-hop propagation delay in nanoseconds.
    pub prop_delay_ns: u64,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            link_gbps: 1.0,
            packet_bytes: 1500,
            buffer_packets: 64,
            prop_delay_ns: 500,
        }
    }
}

impl PacketSimConfig {
    /// Serialization time of one packet on one link, in ns.
    pub fn tx_time_ns(&self) -> u64 {
        ((f64::from(self.packet_bytes) * 8.0) / self.link_gbps).round() as u64
    }
}

/// One flow: a packet train from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Number of packets.
    pub packets: u64,
    /// Injection start time (ns).
    pub start_ns: u64,
    /// Inter-packet injection gap (ns); `None` paces at line rate.
    pub gap_ns: Option<u64>,
}

impl FlowSpec {
    /// A bulk transfer paced at line rate starting at t = 0.
    pub fn bulk(src: NodeId, dst: NodeId, packets: u64) -> Self {
        FlowSpec {
            src,
            dst,
            packets,
            start_ns: 0,
            gap_ns: None,
        }
    }

    /// An unpaced burst: all packets offered at `start_ns` simultaneously
    /// (stresses buffers; models incast micro-bursts).
    pub fn burst(src: NodeId, dst: NodeId, packets: u64, start_ns: u64) -> Self {
        FlowSpec {
            src,
            dst,
            packets,
            start_ns,
            gap_ns: Some(0),
        }
    }
}

/// Discrete-event packet simulator bound to one topology.
#[derive(Debug, Clone, Copy)]
pub struct PacketSim<'a, T: Topology + ?Sized> {
    topo: &'a T,
    config: PacketSimConfig,
}

/// Heap entry: `(time, seq, flow, inject_ns, hop)` — all integers so the
/// tuple's derived `Ord` gives deterministic time-then-insertion ordering.
type Event = (u64, u64, u32, u64, u32);

impl<'a, T: Topology + ?Sized> PacketSim<'a, T> {
    /// Creates a simulator over `topo`.
    pub fn new(topo: &'a T, config: PacketSimConfig) -> Self {
        PacketSim { topo, config }
    }

    /// The topology this simulator drives.
    pub fn topo(&self) -> &'a T {
        self.topo
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PacketSimConfig {
        &self.config
    }

    /// Runs the flow set to completion and reports packet-level statistics.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (e.g. a non-server endpoint).
    pub fn run(&self, flows: &[FlowSpec]) -> Result<PacketSimReport, RouteError> {
        let _span = dcn_telemetry::span!("packetsim.run");
        dcn_telemetry::counter!("packetsim.runs").inc();
        let telemetry_on = dcn_telemetry::enabled();
        let net = self.topo.network();
        let tx = self.config.tx_time_ns();
        // Per-flow node paths and directed-link sequences.
        let mut paths: Vec<Vec<(NodeId, Option<usize>)>> = Vec::with_capacity(flows.len());
        for f in flows {
            let route = self.topo.route(f.src, f.dst)?;
            let mut hops: Vec<(NodeId, Option<usize>)> = Vec::new();
            let nodes = route.nodes();
            for (i, &node) in nodes.iter().enumerate() {
                let out = if i + 1 < nodes.len() {
                    let l: LinkId = net
                        .find_link(node, nodes[i + 1])
                        .expect("route validated by construction");
                    Some(l.index() * 2 + usize::from(net.link(l).a == node))
                } else {
                    None
                };
                hops.push((node, out));
            }
            paths.push(hops);
        }

        // Directed-link state: when the transmitter frees up.
        let mut busy_until = vec![0u64; net.link_count() * 2];

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (fi, f) in flows.iter().enumerate() {
            let gap = f.gap_ns.unwrap_or(tx);
            for p in 0..f.packets {
                let t = f.start_ns + p * gap;
                heap.push(Reverse((t, seq, fi as u32, t, 0)));
                seq += 1;
            }
        }

        let mut latencies: Vec<u64> = Vec::new();
        let mut dropped = 0u64;
        let mut last_delivery = 0u64;
        let buffer_ns = u64::from(self.config.buffer_packets) * tx;
        let mut per_flow: Vec<crate::FlowOutcome> = flows
            .iter()
            .map(|f| crate::FlowOutcome {
                src: f.src,
                dst: f.dst,
                offered: f.packets,
                delivered: 0,
                dropped: 0,
                completion_ns: 0,
            })
            .collect();

        let mut events = 0u64;
        while let Some(Reverse((now, _, flow, inject_ns, hop))) = heap.pop() {
            events += 1;
            let path = &paths[flow as usize];
            let (_, out) = path[hop as usize];
            match out {
                None => {
                    // Delivered.
                    if telemetry_on {
                        dcn_telemetry::histogram!("packetsim.delivery_latency_ns")
                            .record(now - inject_ns);
                    }
                    latencies.push(now - inject_ns);
                    last_delivery = last_delivery.max(now);
                    let fo = &mut per_flow[flow as usize];
                    fo.delivered += 1;
                    fo.completion_ns = fo.completion_ns.max(now);
                }
                Some(dlink) => {
                    // Tail-drop if the output queue (measured in pending
                    // serialization time) is full.
                    let backlog = busy_until[dlink].saturating_sub(now);
                    if telemetry_on {
                        // Queue depth in packets at enqueue time.
                        dcn_telemetry::histogram!("packetsim.queue_depth_packets")
                            .record(backlog / tx.max(1));
                    }
                    if backlog >= buffer_ns {
                        dropped += 1;
                        per_flow[flow as usize].dropped += 1;
                        continue;
                    }
                    let start = busy_until[dlink].max(now);
                    let done = start + tx;
                    busy_until[dlink] = done;
                    heap.push(Reverse((
                        done + self.config.prop_delay_ns,
                        seq,
                        flow,
                        inject_ns,
                        hop + 1,
                    )));
                    seq += 1;
                }
            }
        }

        if telemetry_on {
            dcn_telemetry::counter!("packetsim.events").add(events);
            dcn_telemetry::counter!("packetsim.delivered").add(latencies.len() as u64);
            dcn_telemetry::counter!("packetsim.dropped").add(dropped);
        }
        Ok(PacketSimReport::from_samples(
            self.topo.name(),
            latencies,
            dropped,
            last_delivery,
            self.config,
            per_flow,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap() // 8 servers
    }

    #[test]
    fn lone_flow_is_lossless_at_line_rate() {
        let t = topo();
        let cfg = PacketSimConfig::default();
        let r = PacketSim::new(&t, cfg)
            .run(&[FlowSpec::bulk(NodeId(0), NodeId(7), 500)])
            .unwrap();
        assert_eq!(r.delivered, 500);
        assert_eq!(r.dropped, 0);
        assert!(r.mean_latency_ns > 0.0);
        // Goodput ≈ line rate for a long-enough train.
        assert!(r.goodput_gbps(1) > 0.9, "{}", r.goodput_gbps(1));
    }

    #[test]
    fn latency_grows_with_hops() {
        let t = topo();
        let cfg = PacketSimConfig::default();
        // 1-hop pair: same label, different position ⇒ ids 0 and 1.
        let near = PacketSim::new(&t, cfg)
            .run(&[FlowSpec::bulk(NodeId(0), NodeId(1), 1)])
            .unwrap();
        let far = PacketSim::new(&t, cfg)
            .run(&[FlowSpec::bulk(NodeId(0), NodeId(7), 1)])
            .unwrap();
        assert!(far.mean_latency_ns > near.mean_latency_ns);
    }

    #[test]
    fn incast_burst_drops_with_tiny_buffers() {
        let t = topo();
        let cfg = PacketSimConfig {
            buffer_packets: 2,
            ..Default::default()
        };
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::burst(NodeId(s), NodeId(0), 50, 0))
            .collect();
        let r = PacketSim::new(&t, cfg).run(&flows).unwrap();
        assert!(r.dropped > 0, "expected tail drops under incast burst");
        assert!(r.delivered > 0);
        assert_eq!(r.delivered + r.dropped, 350);
    }

    #[test]
    fn bigger_buffers_reduce_drops() {
        let t = topo();
        let small = PacketSimConfig {
            buffer_packets: 2,
            ..Default::default()
        };
        let big = PacketSimConfig {
            buffer_packets: 256,
            ..Default::default()
        };
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::burst(NodeId(s), NodeId(0), 50, 0))
            .collect();
        let r_small = PacketSim::new(&t, small).run(&flows).unwrap();
        let r_big = PacketSim::new(&t, big).run(&flows).unwrap();
        assert!(r_big.dropped < r_small.dropped);
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let cfg = PacketSimConfig::default();
        let flows = [FlowSpec::bulk(NodeId(0), NodeId(6), 100)];
        let a = PacketSim::new(&t, cfg).run(&flows).unwrap();
        let b = PacketSim::new(&t, cfg).run(&flows).unwrap();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_latency_ns, b.mean_latency_ns);
    }

    #[test]
    fn per_flow_outcomes_are_consistent() {
        let t = topo();
        let flows = [
            FlowSpec::bulk(NodeId(0), NodeId(7), 40),
            FlowSpec::bulk(NodeId(2), NodeId(5), 10),
        ];
        let r = PacketSim::new(&t, PacketSimConfig::default())
            .run(&flows)
            .unwrap();
        assert_eq!(r.per_flow.len(), 2);
        for (fo, spec) in r.per_flow.iter().zip(&flows) {
            assert_eq!(fo.src, spec.src);
            assert_eq!(fo.dst, spec.dst);
            assert_eq!(fo.offered, spec.packets);
            assert_eq!(fo.delivered + fo.dropped, fo.offered);
        }
        let total: u64 = r.per_flow.iter().map(|f| f.delivered).sum();
        assert_eq!(total, r.delivered);
        // FCT of the longer flow dominates the mean makespan accounting.
        let fct = r.mean_fct_ns().unwrap();
        assert!(fct > 0.0 && fct <= r.makespan_ns as f64);
        assert!(r.per_flow[0].completion_ns >= r.per_flow[1].completion_ns);
    }

    #[test]
    fn rejects_switch_endpoint() {
        let t = topo();
        let sw = NodeId(t.params().server_count() as u32);
        assert!(PacketSim::new(&t, PacketSimConfig::default())
            .run(&[FlowSpec::bulk(sw, NodeId(0), 1)])
            .is_err());
    }
}
