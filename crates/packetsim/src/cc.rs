//! Closed-loop (AIMD) packet injection.
//!
//! The open-loop [`crate::PacketSim::run`] injects at line rate regardless
//! of loss — useful for stress shapes, but real transfers run a transport.
//! This module adds a windowed AIMD sender (additive increase on delivery,
//! multiplicative decrease on loss, instant loss signal), which is the
//! standard abstraction the DCN simulation literature uses for TCP-like
//! behaviour without modelling retransmission timers.

use crate::{FlowOutcome, FlowSpec, PacketSim, PacketSimReport};
use netgraph::{NodeId, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// AIMD parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AimdConfig {
    /// Initial congestion window (packets in flight).
    pub initial_window: f64,
    /// Window cap (packets).
    pub max_window: f64,
    /// Multiplicative decrease factor on loss (e.g. 0.5).
    pub decrease: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            initial_window: 2.0,
            max_window: 64.0,
            decrease: 0.5,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    remaining: u64,
    in_flight: u32,
    window: f64,
    delivered: u64,
    dropped_total: u64,
    completion_ns: u64,
}

// Event: (time, seq, flow, inject_ns, hop). hop == TRY_SEND is a sender
// wake-up rather than a packet arrival.
type Event = (u64, u64, u32, u64, u32);
const TRY_SEND: u32 = u32::MAX;

impl<'a, T: Topology + ?Sized> PacketSim<'a, T> {
    /// Runs the flow set with AIMD closed-loop senders: each flow keeps at
    /// most `window` packets in flight, growing the window by `1/window`
    /// per delivery and multiplying it by `decrease` per loss.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (e.g. a non-server endpoint).
    pub fn run_aimd(
        &self,
        flows: &[FlowSpec],
        aimd: AimdConfig,
    ) -> Result<PacketSimReport, RouteError> {
        let net = self.topo().network();
        let cfg = self.config();
        let tx = cfg.tx_time_ns();
        // Per-flow directed-link paths (same encoding as the open loop).
        let mut paths: Vec<Vec<(NodeId, Option<usize>)>> = Vec::with_capacity(flows.len());
        for f in flows {
            let route = self.topo().route(f.src, f.dst)?;
            let nodes = route.nodes();
            let mut hops = Vec::with_capacity(nodes.len());
            for (i, &node) in nodes.iter().enumerate() {
                let out = if i + 1 < nodes.len() {
                    let l = net.find_link(node, nodes[i + 1]).expect("validated");
                    Some(l.index() * 2 + usize::from(net.link(l).a == node))
                } else {
                    None
                };
                hops.push((node, out));
            }
            paths.push(hops);
        }

        let mut busy_until = vec![0u64; net.link_count() * 2];
        let mut state: Vec<FlowState> = flows
            .iter()
            .map(|f| FlowState {
                remaining: f.packets,
                in_flight: 0,
                window: aimd.initial_window,
                delivered: 0,
                dropped_total: 0,
                completion_ns: 0,
            })
            .collect();

        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (fi, f) in flows.iter().enumerate() {
            heap.push(Reverse((f.start_ns, seq, fi as u32, 0, TRY_SEND)));
            seq += 1;
        }

        let mut latencies: Vec<u64> = Vec::new();
        let mut dropped = 0u64;
        let mut last_delivery = 0u64;
        let buffer_ns = u64::from(cfg.buffer_packets) * tx;

        while let Some(Reverse((now, _, flow, inject_ns, hop))) = heap.pop() {
            let fi = flow as usize;
            if hop == TRY_SEND {
                let st = &mut state[fi];
                if st.remaining > 0 && f64::from(st.in_flight) < st.window.floor() {
                    st.remaining -= 1;
                    st.in_flight += 1;
                    heap.push(Reverse((now, seq, flow, now, 0)));
                    seq += 1;
                    // Pace the next injection one serialization time later.
                    if st.remaining > 0 {
                        heap.push(Reverse((now + tx, seq, flow, 0, TRY_SEND)));
                        seq += 1;
                    }
                }
                continue;
            }
            let (_, out) = paths[fi][hop as usize];
            match out {
                None => {
                    latencies.push(now - inject_ns);
                    last_delivery = last_delivery.max(now);
                    let st = &mut state[fi];
                    st.in_flight -= 1;
                    st.delivered += 1;
                    st.completion_ns = st.completion_ns.max(now);
                    // Additive increase, then try to send more.
                    st.window = (st.window + 1.0 / st.window).min(aimd.max_window);
                    heap.push(Reverse((now, seq, flow, 0, TRY_SEND)));
                    seq += 1;
                }
                Some(dlink) => {
                    let backlog = busy_until[dlink].saturating_sub(now);
                    if backlog >= buffer_ns {
                        dropped += 1;
                        let st = &mut state[fi];
                        st.in_flight -= 1;
                        st.dropped_total += 1;
                        // Multiplicative decrease (instant loss signal).
                        st.window = (st.window * aimd.decrease).max(1.0);
                        heap.push(Reverse((now + tx, seq, flow, 0, TRY_SEND)));
                        seq += 1;
                        continue;
                    }
                    let start = busy_until[dlink].max(now);
                    let done = start + tx;
                    busy_until[dlink] = done;
                    heap.push(Reverse((
                        done + cfg.prop_delay_ns,
                        seq,
                        flow,
                        inject_ns,
                        hop + 1,
                    )));
                    seq += 1;
                }
            }
        }

        let per_flow: Vec<FlowOutcome> = flows
            .iter()
            .zip(&state)
            .map(|(f, st)| FlowOutcome {
                src: f.src,
                dst: f.dst,
                offered: f.packets,
                delivered: st.delivered,
                dropped: st.dropped_total,
                completion_ns: st.completion_ns,
            })
            .collect();
        Ok(PacketSimReport::from_samples(
            self.topo().name(),
            latencies,
            dropped,
            last_delivery,
            *cfg,
            per_flow,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketSimConfig;
    use abccc::{Abccc, AbcccParams};

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap()
    }

    #[test]
    fn aimd_keeps_offered_packets_accounted() {
        // AIMD retries nothing (dropped is dropped), so delivered + dropped
        // equals offered.
        let t = topo();
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::bulk(NodeId(s), NodeId(0), 100))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 4,
            ..Default::default()
        };
        let r = PacketSim::new(&t, cfg)
            .run_aimd(&flows, AimdConfig::default())
            .unwrap();
        let offered = 7 * 100;
        assert_eq!(r.delivered + r.dropped, offered);
    }

    #[test]
    fn aimd_loses_far_less_than_open_loop_under_incast() {
        let t = topo();
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::burst(NodeId(s), NodeId(0), 100, 0))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 4,
            ..Default::default()
        };
        let open = PacketSim::new(&t, cfg).run(&flows).unwrap();
        let aimd = PacketSim::new(&t, cfg)
            .run_aimd(&flows, AimdConfig::default())
            .unwrap();
        assert!(open.loss_rate() > 0.1, "incast must stress the open loop");
        assert!(
            aimd.loss_rate() < open.loss_rate() / 2.0,
            "aimd {} vs open {}",
            aimd.loss_rate(),
            open.loss_rate()
        );
    }

    #[test]
    fn lone_aimd_flow_completes_losslessly() {
        let t = topo();
        let r = PacketSim::new(&t, PacketSimConfig::default())
            .run_aimd(
                &[FlowSpec::bulk(NodeId(0), NodeId(7), 200)],
                AimdConfig::default(),
            )
            .unwrap();
        assert_eq!(r.delivered, 200);
        assert_eq!(r.dropped, 0);
        assert!(r.per_flow[0].complete());
    }

    #[test]
    fn window_cap_limits_inflight_latency() {
        // A tiny max window keeps queues shallow → lower p99 than a huge one.
        let t = topo();
        let flows: Vec<FlowSpec> = (1..8)
            .map(|s| FlowSpec::bulk(NodeId(s), NodeId(0), 100))
            .collect();
        let cfg = PacketSimConfig {
            buffer_packets: 1024,
            ..Default::default()
        };
        let small = PacketSim::new(&t, cfg)
            .run_aimd(
                &flows,
                AimdConfig {
                    max_window: 2.0,
                    ..Default::default()
                },
            )
            .unwrap();
        let big = PacketSim::new(&t, cfg)
            .run_aimd(
                &flows,
                AimdConfig {
                    max_window: 512.0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(small.p99_latency_ns < big.p99_latency_ns);
    }
}
