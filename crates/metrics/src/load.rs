//! Link-load balance analysis.
//!
//! The ICC'15 companion paper's second axis (after path length) is **load
//! balance**: a good permutation generator spreads flows across the
//! level/crossbar fabric instead of piling them onto few links. This
//! module measures the distribution of flows over directed links for any
//! set of routes.

use netgraph::{Network, Route};
use serde::{Deserialize, Serialize};

/// Distribution statistics of flows-per-directed-link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadStats {
    /// Number of directed links carrying at least one flow.
    pub used_links: usize,
    /// Total directed links.
    pub total_links: usize,
    /// Maximum flows on any directed link.
    pub max_load: u32,
    /// Mean flows per *used* directed link.
    pub mean_load: f64,
    /// Coefficient of variation over used links (std/mean): 0 = perfectly
    /// even.
    pub cv: f64,
}

impl LoadStats {
    /// Ratio of the hottest link to the mean — the paper-style imbalance
    /// factor (1.0 = perfect balance).
    pub fn imbalance(&self) -> f64 {
        if self.mean_load == 0.0 {
            1.0
        } else {
            f64::from(self.max_load) / self.mean_load
        }
    }
}

/// Measures the flows-per-directed-link distribution of `routes`.
///
/// Adjacent-node pairs resolve to links via the CSR-backed
/// [`Network::find_link`] (O(log degree) per hop), so this stays linear in
/// total route length even on high-radix fabrics.
///
/// # Panics
///
/// Panics if a route traverses nodes that are not adjacent in `net`.
pub fn link_load(net: &Network, routes: &[Route]) -> LoadStats {
    let mut load = vec![0u32; net.link_count() * 2];
    for r in routes {
        for w in r.nodes().windows(2) {
            let l = net
                .find_link(w[0], w[1])
                .unwrap_or_else(|| panic!("route nodes {} – {} not adjacent", w[0], w[1]));
            let dir = usize::from(net.link(l).a == w[0]);
            load[l.index() * 2 + dir] += 1;
        }
    }
    let used: Vec<u32> = load.iter().copied().filter(|&x| x > 0).collect();
    let max_load = used.iter().copied().max().unwrap_or(0);
    let mean = if used.is_empty() {
        0.0
    } else {
        used.iter().map(|&x| f64::from(x)).sum::<f64>() / used.len() as f64
    };
    let var = if used.is_empty() {
        0.0
    } else {
        used.iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / used.len() as f64
    };
    LoadStats {
        used_links: used.len(),
        total_links: load.len(),
        max_load,
        mean_load: mean,
        cv: if mean == 0.0 { 0.0 } else { var.sqrt() / mean },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Network;

    fn star() -> (Network, Vec<netgraph::NodeId>, netgraph::NodeId) {
        let mut net = Network::new();
        let s: Vec<_> = (0..4).map(|_| net.add_server()).collect();
        let sw = net.add_switch();
        for &x in &s {
            net.add_link(x, sw, 1.0);
        }
        (net, s, sw)
    }

    #[test]
    fn balanced_star_traffic() {
        let (net, s, sw) = star();
        // Ring of flows: 0→1, 1→2, 2→3, 3→0 — each link carries exactly
        // one flow per direction.
        let routes: Vec<Route> = (0..4)
            .map(|i| Route::new(vec![s[i], sw, s[(i + 1) % 4]]))
            .collect();
        let stats = link_load(&net, &routes);
        assert_eq!(stats.max_load, 1);
        assert_eq!(stats.mean_load, 1.0);
        assert_eq!(stats.cv, 0.0);
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.used_links, 8);
    }

    #[test]
    fn incast_is_imbalanced() {
        let (net, s, sw) = star();
        let routes: Vec<Route> = (1..4).map(|i| Route::new(vec![s[i], sw, s[0]])).collect();
        let stats = link_load(&net, &routes);
        assert_eq!(stats.max_load, 3); // sw → s0 carries all flows
        assert!(stats.imbalance() > 1.5);
        assert!(stats.cv > 0.0);
    }

    #[test]
    fn empty_routes() {
        let (net, _, _) = star();
        let stats = link_load(&net, &[]);
        assert_eq!(stats.used_links, 0);
        assert_eq!(stats.imbalance(), 1.0);
    }
}
