//! Design-space exploration — the "fine tuning its parameters" claim as a
//! tool.
//!
//! Given a target server count, enumerate the `(n, k, h)` configurations
//! that reach it and rank them by the axis the operator cares about:
//! CAPEX per server, diameter, per-server bisection, or NIC ports. This is
//! the concrete workflow behind the abstract's "ABCCC suits many different
//! applications by fine tuning its parameters".

use crate::{expansion, CostModel};
use abccc::AbcccParams;
use serde::{Deserialize, Serialize};

/// One candidate configuration with its headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The configuration.
    pub params: AbcccParams,
    /// Servers it provides.
    pub servers: u64,
    /// Diameter in server hops.
    pub diameter: u64,
    /// Bisection links per server (even `n` only).
    pub bisection_per_server: Option<f64>,
    /// NIC ports per server.
    pub ports: u32,
    /// CAPEX per server under the given cost model.
    pub capex_per_server: f64,
}

/// What to optimize when ranking candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Cheapest per server.
    Cost,
    /// Shortest diameter (ties: cheapest).
    Latency,
    /// Highest per-server bisection (ties: cheapest).
    Bandwidth,
}

/// Enumerates every `ABCCC(n, k, h)` with `n ∈ switch_radixes`,
/// `h ∈ 2..=max_ports`, smallest `k` reaching `target_servers`, and
/// returns them sorted by `objective`.
///
/// # Panics
///
/// Panics if `target_servers == 0`, `switch_radixes` is empty, or
/// `max_ports < 2`.
pub fn recommend(
    target_servers: u64,
    switch_radixes: &[u32],
    max_ports: u32,
    cost: &CostModel,
    objective: Objective,
) -> Vec<Candidate> {
    assert!(target_servers > 0, "target must be positive");
    assert!(!switch_radixes.is_empty(), "need at least one switch radix");
    assert!(max_ports >= 2, "servers need at least two ports");
    let mut out = Vec::new();
    for &n in switch_radixes {
        for h in 2..=max_ports {
            // Smallest k whose server count reaches the target.
            for k in 0..=19u32 {
                let Ok(p) = AbcccParams::new(n, k, h) else {
                    break;
                };
                if p.server_count() >= target_servers {
                    let stats = crate::TopologyStats {
                        name: p.to_string(),
                        servers: p.server_count(),
                        switches: p.switch_count(),
                        switch_radix_histogram: expansion::abccc_radix_histogram(&p),
                        wires: p.wire_count(),
                        max_server_ports: h,
                        diameter_server_hops: None,
                        avg_path_length: None,
                    };
                    let capex = cost.capex(&stats);
                    out.push(Candidate {
                        params: p,
                        servers: p.server_count(),
                        diameter: p.diameter(),
                        bisection_per_server: p.bisection_per_server(),
                        ports: h,
                        capex_per_server: capex.per_server(),
                    });
                    break;
                }
            }
        }
    }
    // Deduplicate identical parameterizations (h beyond k+2 degenerates).
    out.dedup_by(|a, b| {
        a.params.group_size() == b.params.group_size()
            && a.params.n() == b.params.n()
            && a.params.k() == b.params.k()
            && a.servers == b.servers
    });
    match objective {
        Objective::Cost => out.sort_by(|a, b| {
            a.capex_per_server
                .total_cmp(&b.capex_per_server)
                .then(a.diameter.cmp(&b.diameter))
        }),
        Objective::Latency => out.sort_by(|a, b| {
            a.diameter
                .cmp(&b.diameter)
                .then(a.capex_per_server.total_cmp(&b.capex_per_server))
        }),
        Objective::Bandwidth => out.sort_by(|a, b| {
            b.bisection_per_server
                .unwrap_or(0.0)
                .total_cmp(&a.bisection_per_server.unwrap_or(0.0))
                .then(a.capex_per_server.total_cmp(&b.capex_per_server))
        }),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_the_target_with_every_candidate() {
        let cost = CostModel::default();
        let cands = recommend(1000, &[4, 8], 4, &cost, Objective::Cost);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.servers >= 1000, "{}", c.params);
        }
        // Sorted by cost.
        for w in cands.windows(2) {
            assert!(w[0].capex_per_server <= w[1].capex_per_server + 1e-9);
        }
    }

    #[test]
    fn latency_objective_puts_bcube_like_first() {
        let cost = CostModel::default();
        let cands = recommend(500, &[4], 5, &cost, Objective::Latency);
        // The shortest-diameter candidate has the largest h (smallest m).
        let first = &cands[0];
        for c in &cands[1..] {
            assert!(first.diameter <= c.diameter);
        }
        assert!(first.params.group_size() <= cands.last().expect("non-empty").params.group_size());
    }

    #[test]
    fn bandwidth_objective_maximizes_per_server_bisection() {
        let cost = CostModel::default();
        let cands = recommend(500, &[4], 5, &cost, Objective::Bandwidth);
        for w in cands.windows(2) {
            assert!(
                w[0].bisection_per_server.unwrap_or(0.0)
                    >= w[1].bisection_per_server.unwrap_or(0.0) - 1e-12
            );
        }
    }

    #[test]
    fn cost_and_latency_disagree() {
        // The trade-off is real: the cheapest candidate is not the fastest.
        let cost = CostModel::default();
        let by_cost = recommend(1000, &[4], 5, &cost, Objective::Cost);
        let by_latency = recommend(1000, &[4], 5, &cost, Objective::Latency);
        assert_ne!(by_cost[0].params, by_latency[0].params);
        assert!(by_cost[0].capex_per_server < by_latency[0].capex_per_server);
        assert!(by_latency[0].diameter < by_cost[0].diameter);
    }
}
