//! Theoretical throughput upper bounds.
//!
//! Sanity ceilings the simulators must respect (and asserted so in tests):
//!
//! * **NIC bound** — a server cannot send or receive faster than its
//!   attached port capacity;
//! * **capacity bound** — aggregate throughput ≤ total directed link
//!   capacity ÷ mean path length (in links), the classic network-capacity
//!   argument;
//! * **bisection bound** — traffic crossing a server bipartition ≤ the
//!   cut's total link capacity (per direction).

use netgraph::{NodeId, Topology};

/// Sum of NIC capacities of server `s` (its maximum injection or delivery
/// rate).
pub fn nic_capacity<T: Topology + ?Sized>(topo: &T, s: NodeId) -> f64 {
    topo.network()
        .neighbors(s)
        .iter()
        .map(|&(_, l)| topo.network().link(l).capacity)
        .sum()
}

/// Upper bound on the aggregate rate of `pairs`: each flow is limited by
/// its endpoints' NICs, and each NIC is shared by the flows using it.
pub fn nic_bound<T: Topology + ?Sized>(topo: &T, pairs: &[(NodeId, NodeId)]) -> f64 {
    let net = topo.network();
    let mut out_load = vec![0u32; net.node_count()];
    let mut in_load = vec![0u32; net.node_count()];
    for &(s, d) in pairs {
        if s != d {
            out_load[s.index()] += 1;
            in_load[d.index()] += 1;
        }
    }
    // Aggregate ≤ Σ_servers min(out NIC cap, …): each server's sends are
    // capped by its NIC capacity; same for receives. Take the tighter side.
    let send: f64 = net
        .server_ids()
        .filter(|s| out_load[s.index()] > 0)
        .map(|s| nic_capacity(topo, s))
        .sum();
    let recv: f64 = net
        .server_ids()
        .filter(|s| in_load[s.index()] > 0)
        .map(|s| nic_capacity(topo, s))
        .sum();
    send.min(recv)
}

/// Upper bound on aggregate throughput from total capacity and the mean
/// path length of the routed flows (in links): every unit of flow consumes
/// `mean_link_hops` units of directed link capacity.
///
/// # Panics
///
/// Panics if routing fails (fault-free networks never fail).
pub fn capacity_bound<T: Topology + ?Sized>(topo: &T, pairs: &[(NodeId, NodeId)]) -> f64 {
    let net = topo.network();
    let mut total_hops = 0usize;
    let mut flows = 0usize;
    for &(s, d) in pairs {
        if s == d {
            continue;
        }
        let r = topo
            .route(s, d)
            .expect("routing failed on fault-free network");
        total_hops += r.link_hops();
        flows += 1;
    }
    if flows == 0 || total_hops == 0 {
        return f64::INFINITY;
    }
    let directed_capacity: f64 = net.links().iter().map(|l| 2.0 * l.capacity).sum();
    let mean_hops = total_hops as f64 / flows as f64;
    directed_capacity / mean_hops
}

/// Upper bound on the rate crossing the id-canonical bipartition, per
/// direction: the exact min-cut capacity (unit capacities assumed by the
/// evaluation; scaled by `link_capacity`).
pub fn bisection_bound<T: Topology + ?Sized>(topo: &T, link_capacity: f64) -> f64 {
    crate::bisection::exact_bisection_by_id(topo.network()) as f64 * link_capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use dcn_sim::FlowSim;
    use rand::SeedableRng;

    fn topo() -> Abccc {
        Abccc::new(AbcccParams::new(2, 2, 2).unwrap()).unwrap()
    }

    #[test]
    fn nic_capacity_equals_degree_at_unit_caps() {
        let t = topo();
        assert_eq!(nic_capacity(&t, NodeId(0)), 2.0);
    }

    #[test]
    fn simulated_rates_respect_all_bounds() {
        let t = topo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = netgraph::Topology::network(&t).server_count();
        for pairs in [
            dcn_workloads::traffic::random_permutation(n, &mut rng),
            dcn_workloads::traffic::bisection_pairs(n, &mut rng),
        ] {
            let report = FlowSim::new(&t).run(&pairs).unwrap();
            assert!(report.aggregate_rate <= nic_bound(&t, &pairs) + 1e-6);
            assert!(report.aggregate_rate <= capacity_bound(&t, &pairs) + 1e-6);
        }
    }

    #[test]
    fn bisection_traffic_respects_cut() {
        let t = topo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = netgraph::Topology::network(&t).server_count();
        let pairs = dcn_workloads::traffic::bisection_pairs(n, &mut rng);
        let report = FlowSim::new(&t).run(&pairs).unwrap();
        // All pairs cross the canonical cut; both directions are loaded, so
        // the aggregate is bounded by twice the per-direction cut.
        assert!(report.aggregate_rate <= 2.0 * bisection_bound(&t, 1.0) + 1e-6);
    }

    #[test]
    fn empty_pairs_are_unbounded() {
        let t = topo();
        assert_eq!(capacity_bound(&t, &[]), f64::INFINITY);
        assert_eq!(nic_bound(&t, &[]), 0.0);
    }
}
