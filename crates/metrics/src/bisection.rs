//! Bisection bandwidth measurement.
//!
//! The paper reports bisection width in links (equivalently bandwidth at
//! unit link capacity). For structured topologies the canonical balanced
//! cut is known; we compute its exact min-cut value with max-flow, and
//! additionally probe random balanced bipartitions (every probe is an
//! *upper bound* on the true bisection — if a probe ever beat the
//! canonical cut the formula would be refuted).

use netgraph::{Network, NodeId, Topology};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Exact min-cut (links) between the two halves of the canonical
/// bipartition `side` (`side[server.index()]` = in part A).
pub fn exact_bisection(net: &Network, side: &[bool]) -> u64 {
    netgraph::maxflow::bisection_width(net, side)
}

/// Exact min-cut for the "first half by server id" bipartition — the
/// canonical cut for every family in this repository (all builders order
/// server ids so that the most-significant address component splits first).
pub fn exact_bisection_by_id(net: &Network) -> u64 {
    let n = net.server_count();
    let side: Vec<bool> = (0..net.node_count()).map(|i| i < n / 2).collect();
    exact_bisection(net, &side)
}

/// Result of random balanced-bipartition probing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BisectionProbe {
    /// Minimum cut found over all probes (an upper bound on bisection).
    pub min_cut: u64,
    /// Mean cut over probes.
    pub mean_cut: f64,
    /// Probes run.
    pub trials: usize,
}

/// Probes `trials` uniformly random balanced server bipartitions and
/// returns the min/mean exact cut values.
///
/// # Panics
///
/// Panics if the network has fewer than two servers or `trials == 0`.
pub fn random_balanced_probe(
    net: &Network,
    trials: usize,
    rng: &mut impl rand::Rng,
) -> BisectionProbe {
    assert!(trials > 0, "need at least one trial");
    let servers: Vec<NodeId> = net.server_ids().collect();
    assert!(servers.len() >= 2, "need at least two servers");
    let mut min_cut = u64::MAX;
    let mut sum = 0u64;
    let mut shuffled = servers.clone();
    for _ in 0..trials {
        shuffled.shuffle(rng);
        let mut side = vec![false; net.node_count()];
        for s in &shuffled[..servers.len() / 2] {
            side[s.index()] = true;
        }
        let cut = exact_bisection(net, &side);
        min_cut = min_cut.min(cut);
        sum += cut;
    }
    BisectionProbe {
        min_cut,
        mean_cut: sum as f64 / trials as f64,
        trials,
    }
}

/// Convenience: canonical-cut bisection of a topology.
pub fn bisection_of<T: Topology + ?Sized>(topo: &T) -> u64 {
    exact_bisection_by_id(topo.network())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use dcn_baselines::prelude::{BCube, BCubeParams, FatTree, FatTreeParams};
    use rand::SeedableRng;

    #[test]
    fn abccc_canonical_cut_matches_formula() {
        for (n, k, h) in [(2, 1, 2), (2, 2, 2), (4, 1, 2), (2, 2, 3), (2, 1, 3)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let t = Abccc::new(p).unwrap();
            // Canonical: split by most-significant digit. Server ids are
            // label-major, so first-half-by-id is exactly digit-k < n/2.
            assert_eq!(
                exact_bisection_by_id(t.network()),
                p.bisection_width().unwrap(),
                "{p}"
            );
        }
    }

    #[test]
    fn random_probes_never_beat_formula() {
        let p = AbcccParams::new(2, 2, 2).unwrap();
        let t = Abccc::new(p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let probe = random_balanced_probe(t.network(), 16, &mut rng);
        assert!(probe.min_cut >= p.bisection_width().unwrap(), "{probe:?}");
        assert!(probe.mean_cut >= probe.min_cut as f64);
    }

    #[test]
    fn bcube_canonical() {
        let t = BCube::new(BCubeParams::new(4, 1).unwrap()).unwrap();
        assert_eq!(exact_bisection_by_id(t.network()), 8); // n^(k+1)/2
    }

    #[test]
    fn fattree_full_bisection() {
        let pt = FatTreeParams::new(4).unwrap();
        let t = FatTree::new(pt).unwrap();
        assert_eq!(exact_bisection_by_id(t.network()), pt.bisection_width());
    }
}
