//! Expansion-cost comparison across families (experiment F4).
//!
//! "Expansion cost" has two components the paper distinguishes:
//! the CAPEX of the *new* components (unavoidable — you are buying more
//! network), and the **legacy impact**: NICs retrofitted into servers that
//! are already racked and serving traffic, and existing cables that must
//! be unplugged. ABCCC/BCCC grow with zero legacy impact; BCube and DCell
//! retrofit a NIC into every existing server per order; a fat-tree cannot
//! grow beyond its radix at all and must be rebuilt.

use crate::CostModel;
use dcn_baselines::prelude::{BCubeParams, DCellParams, FatTreeParams};
use serde::{Deserialize, Serialize};

/// The ledger of one family-level expansion step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionLedger {
    /// Family name with parameters, e.g. `"BCube(4,1)→(4,2)"`.
    pub name: String,
    /// Servers before.
    pub from_servers: u64,
    /// Servers after.
    pub to_servers: u64,
    /// CAPEX of newly purchased components (USD).
    pub new_capex_usd: f64,
    /// NICs retrofitted into existing servers.
    pub legacy_nics_added: u64,
    /// Existing cables unplugged/rewired.
    pub legacy_cables_rewired: u64,
    /// Existing switches discarded.
    pub legacy_switches_discarded: u64,
}

impl ExpansionLedger {
    /// Fraction of pre-existing servers whose hardware must be touched.
    pub fn legacy_touch_fraction(&self) -> f64 {
        self.legacy_nics_added as f64 / self.from_servers as f64
    }

    /// `true` if the step leaves all legacy hardware untouched (the ABCCC
    /// expandability property).
    pub fn legacy_untouched(&self) -> bool {
        self.legacy_nics_added == 0
            && self.legacy_cables_rewired == 0
            && self.legacy_switches_discarded == 0
    }
}

fn capex_delta(cost: &CostModel, from: &crate::TopologyStats, to: &crate::TopologyStats) -> f64 {
    // Components are never removed in incremental growth, so the delta of
    // the component-class breakdowns prices exactly the new purchases.
    let c_from = cost.capex(from);
    let c_to = cost.capex(to);
    c_to.total() - c_from.total()
}

/// ABCCC growth `k → k+1` (also covers BCCC with `h = 2`).
///
/// # Errors
///
/// Propagates parameter-validation failures from the grown configuration.
pub fn abccc_expansion(
    from: abccc::AbcccParams,
    cost: &CostModel,
) -> Result<ExpansionLedger, netgraph::NetworkError> {
    let step = abccc::ExpansionStep::grow_order(from)?;
    // Price the delta from closed-form stats (no materialization needed).
    let stats = |p: abccc::AbcccParams| crate::TopologyStats {
        name: p.to_string(),
        servers: p.server_count(),
        switches: p.switch_count(),
        switch_radix_histogram: abccc_radix_histogram(&p),
        wires: p.wire_count(),
        max_server_ports: p.h(),
        diameter_server_hops: None,
        avg_path_length: None,
    };
    Ok(ExpansionLedger {
        name: format!("{}→({},{},{})", from, from.n(), from.k() + 1, from.h()),
        from_servers: from.server_count(),
        to_servers: step.to.server_count(),
        new_capex_usd: capex_delta(cost, &stats(from), &stats(step.to)),
        legacy_nics_added: step.legacy_nics_added,
        legacy_cables_rewired: step.legacy_cables_rewired,
        legacy_switches_discarded: 0,
    })
}

/// Switch radix histogram of an ABCCC parameterization from closed forms.
pub fn abccc_radix_histogram(p: &abccc::AbcccParams) -> std::collections::BTreeMap<usize, usize> {
    let mut h = std::collections::BTreeMap::new();
    if p.crossbar_count() > 0 {
        *h.entry(p.group_size() as usize).or_insert(0) += p.crossbar_count() as usize;
    }
    *h.entry(p.n() as usize).or_insert(0) += p.level_switch_count() as usize;
    h
}

/// BCube growth `k → k+1`: every legacy server gains a NIC and a cable.
///
/// # Errors
///
/// Propagates parameter-validation failures from the grown configuration.
pub fn bcube_expansion(
    from: BCubeParams,
    cost: &CostModel,
) -> Result<ExpansionLedger, netgraph::NetworkError> {
    let to = BCubeParams::new(from.n(), from.k() + 1)?;
    let stats = |p: BCubeParams| {
        let mut hist = std::collections::BTreeMap::new();
        hist.insert(p.n() as usize, p.switch_count() as usize);
        crate::TopologyStats {
            name: p.to_string(),
            servers: p.server_count(),
            switches: p.switch_count(),
            switch_radix_histogram: hist,
            wires: p.wire_count(),
            max_server_ports: p.ports_per_server(),
            diameter_server_hops: None,
            avg_path_length: None,
        }
    };
    Ok(ExpansionLedger {
        name: format!("{from}→({},{})", from.n(), from.k() + 1),
        from_servers: from.server_count(),
        to_servers: to.server_count(),
        new_capex_usd: capex_delta(cost, &stats(from), &stats(to)),
        legacy_nics_added: from.expansion_nics_added(),
        legacy_cables_rewired: 0,
        legacy_switches_discarded: 0,
    })
}

/// DCell growth `k → k+1`: like BCube, every legacy server gains a NIC
/// (the new level's direct cables), and the network explodes in size.
///
/// # Errors
///
/// Propagates parameter-validation failures from the grown configuration.
pub fn dcell_expansion(
    from: DCellParams,
    cost: &CostModel,
) -> Result<ExpansionLedger, netgraph::NetworkError> {
    let to = DCellParams::new(from.n(), from.k() + 1)?;
    let stats = |p: &DCellParams| {
        let mut hist = std::collections::BTreeMap::new();
        hist.insert(p.n() as usize, p.switch_count() as usize);
        crate::TopologyStats {
            name: p.to_string(),
            servers: p.server_count(),
            switches: p.switch_count(),
            switch_radix_histogram: hist,
            wires: p.wire_count(),
            max_server_ports: p.ports_per_server(),
            diameter_server_hops: None,
            avg_path_length: None,
        }
    };
    Ok(ExpansionLedger {
        name: format!("{from}→({},{})", from.n(), from.k() + 1),
        from_servers: from.server_count(),
        to_servers: to.server_count(),
        new_capex_usd: capex_delta(cost, &stats(&from), &stats(&to)),
        legacy_nics_added: from.server_count(),
        legacy_cables_rewired: 0,
        legacy_switches_discarded: 0,
    })
}

/// Fat-tree growth `p → p'`: the entire switch fabric is replaced (a
/// radix-`p` fat-tree cannot host a single extra server), and every legacy
/// cable is re-pulled.
///
/// # Errors
///
/// Propagates parameter-validation failures from the grown configuration.
pub fn fattree_expansion(
    from: FatTreeParams,
    to_p: u32,
    cost: &CostModel,
) -> Result<ExpansionLedger, netgraph::NetworkError> {
    let to = FatTreeParams::new(to_p)?;
    // New build: all switches + all cables are new; server NICs reused.
    let new_switches = cost.switch_price(to.p() as usize) * to.switch_count() as f64;
    let new_cables = cost.cable * to.wire_count() as f64;
    let new_nics = cost.nic_port * (to.server_count() - from.server_count()) as f64;
    Ok(ExpansionLedger {
        name: format!("{from}→({to_p})"),
        from_servers: from.server_count(),
        to_servers: to.server_count(),
        new_capex_usd: new_switches + new_cables + new_nics,
        legacy_nics_added: 0,
        legacy_cables_rewired: from.wire_count(),
        legacy_switches_discarded: from.switch_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abccc_zero_legacy_touch() {
        let cost = CostModel::default();
        let l = abccc_expansion(abccc::AbcccParams::new(4, 2, 3).unwrap(), &cost).unwrap();
        assert!(l.legacy_untouched());
        assert!(l.new_capex_usd > 0.0);
        assert!(l.to_servers > l.from_servers);
    }

    #[test]
    fn bcube_touches_every_server() {
        let cost = CostModel::default();
        let l = bcube_expansion(BCubeParams::new(4, 1).unwrap(), &cost).unwrap();
        assert_eq!(l.legacy_nics_added, 16);
        assert!((l.legacy_touch_fraction() - 1.0).abs() < 1e-12);
        assert!(!l.legacy_untouched());
    }

    #[test]
    fn dcell_touches_every_server() {
        let cost = CostModel::default();
        let l = dcell_expansion(DCellParams::new(3, 1).unwrap(), &cost).unwrap();
        assert_eq!(l.legacy_nics_added, 12);
    }

    #[test]
    fn fattree_discards_fabric() {
        let cost = CostModel::default();
        let from = FatTreeParams::new(4).unwrap();
        let l = fattree_expansion(from, 6, &cost).unwrap();
        assert_eq!(l.legacy_switches_discarded, from.switch_count());
        assert_eq!(l.legacy_cables_rewired, from.wire_count());
        assert!(l.new_capex_usd > 0.0);
    }

    #[test]
    fn abccc_radix_histogram_matches_materialized() {
        let p = abccc::AbcccParams::new(3, 2, 2).unwrap();
        let t = abccc::Abccc::new(p).unwrap();
        assert_eq!(
            abccc_radix_histogram(&p),
            netgraph::Topology::network(&t).switch_radix_histogram()
        );
    }
}
