//! Sampling estimators for networks too large for exact all-pairs BFS.
//!
//! The figure binaries use closed forms for ABCCC (they are proven equal
//! to BFS on small instances), but arbitrary topologies at large N need
//! estimators: sampled average path length with a standard error, and the
//! classic double-sweep diameter lower bound (exact on many structured
//! graphs, including every ABCCC instance we test).

use netgraph::{BfsScratch, DistanceEngine, NodeId, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sampled-mean estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Samples used.
    pub samples: usize,
}

/// Estimates the average server-hop path length from `sources` random
/// single-source BFS sweeps (each sweep contributes all its distances, so
/// the effective sample is large).
///
/// # Panics
///
/// Panics if the topology has under two servers, `sources` is zero, or
/// some pair is disconnected.
pub fn sampled_apl<T: Topology + ?Sized>(topo: &T, sources: usize, rng: &mut impl Rng) -> Estimate {
    let net = topo.network();
    let n = net.server_count();
    assert!(n >= 2, "need at least two servers");
    assert!(sources > 0, "need at least one source");
    // One engine + one scratch for the whole estimate: each sweep reuses
    // the same distance buffer instead of allocating per source.
    let engine = DistanceEngine::new(net);
    let mut scratch = BfsScratch::new();
    let mut per_source_means = Vec::with_capacity(sources);
    for _ in 0..sources {
        let src = NodeId(rng.gen_range(0..n) as u32);
        engine.distances_into(src, &mut scratch);
        let mut sum = 0u64;
        for v in net.server_ids() {
            let d = scratch.dist[v.index()];
            assert_ne!(d, netgraph::bfs::UNREACHABLE, "disconnected topology");
            sum += u64::from(d);
        }
        per_source_means.push(sum as f64 / (n as f64 - 1.0));
    }
    let mean = per_source_means.iter().sum::<f64>() / sources as f64;
    let var = per_source_means
        .iter()
        .map(|m| (m - mean).powi(2))
        .sum::<f64>()
        / sources as f64;
    Estimate {
        mean,
        std_error: (var / sources as f64).sqrt(),
        samples: sources,
    }
}

/// Double-sweep diameter lower bound: BFS from a random server, then BFS
/// from the farthest server found; repeats `sweeps` times and returns the
/// best bound. Exact on trees and empirically tight on the cube families.
///
/// # Panics
///
/// Panics if the topology has under two servers or is disconnected.
pub fn double_sweep_diameter<T: Topology + ?Sized>(
    topo: &T,
    sweeps: usize,
    rng: &mut impl Rng,
) -> u32 {
    let net = topo.network();
    let n = net.server_count();
    assert!(n >= 2, "need at least two servers");
    let engine = DistanceEngine::new(net);
    let mut scratch = BfsScratch::new();
    let mut best = 0u32;
    for _ in 0..sweeps.max(1) {
        let start = NodeId(rng.gen_range(0..n) as u32);
        engine.distances_into(start, &mut scratch);
        let far = net
            .server_ids()
            .max_by_key(|v| scratch.dist[v.index()])
            .expect("non-empty");
        assert_ne!(
            scratch.dist[far.index()],
            netgraph::bfs::UNREACHABLE,
            "disconnected"
        );
        engine.distances_into(far, &mut scratch);
        let ecc = net
            .server_ids()
            .map(|v| scratch.dist[v.index()])
            .max()
            .expect("non-empty");
        best = best.max(ecc);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use dcn_baselines::prelude::{DCell, DCellParams};
    use rand::SeedableRng;

    #[test]
    fn sampled_apl_matches_exact_when_sampling_everything() {
        let t = Abccc::new(AbcccParams::new(3, 1, 2).unwrap()).unwrap();
        let exact =
            netgraph::bfs::average_server_path_length(netgraph::Topology::network(&t)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let est = sampled_apl(&t, 64, &mut rng);
        assert!((est.mean - exact).abs() < 0.1, "{} vs {exact}", est.mean);
        assert!(est.std_error < 0.1);
        assert_eq!(est.samples, 64);
    }

    #[test]
    fn double_sweep_finds_the_exact_diameter_on_abccc() {
        for (n, k, h) in [(2, 2, 2), (3, 1, 2), (2, 3, 3), (3, 1, 3)] {
            let p = AbcccParams::new(n, k, h).unwrap();
            let t = Abccc::new(p).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let bound = double_sweep_diameter(&t, 4, &mut rng);
            assert_eq!(u64::from(bound), p.diameter(), "{p}");
        }
    }

    #[test]
    fn double_sweep_is_a_lower_bound_on_dcell() {
        let t = DCell::new(DCellParams::new(3, 2).unwrap()).unwrap();
        let exact = netgraph::bfs::server_diameter(netgraph::Topology::network(&t)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let bound = double_sweep_diameter(&t, 3, &mut rng);
        assert!(bound <= exact);
        assert!(bound >= exact - 1, "bound {bound} far from exact {exact}");
    }
}
