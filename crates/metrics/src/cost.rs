//! The CAPEX cost model for the paper's capital-expenditure comparison.
//!
//! Prices are configurable; the defaults are 2015-era commodity list
//! prices in USD of the kind the BCube/BCCC papers assume: cheap
//! small-radix COTS switches, per-port NICs, copper cabling. Server
//! chassis cost is excluded — it is identical across all structures at
//! equal server count and would only dilute the comparison.

use crate::TopologyStats;
use serde::{Deserialize, Serialize};

/// Per-component prices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price of one server NIC port (USD).
    pub nic_port: f64,
    /// Price of one cable, pulled and terminated (USD).
    pub cable: f64,
    /// Per-port switch price tiers as `(max_radix, usd_per_port)`, sorted
    /// ascending by radix; larger-radix switches cost disproportionately
    /// more per port (the economics that motivate server-centric designs).
    pub switch_port_tiers: Vec<(usize, f64)>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            nic_port: 15.0,
            cable: 5.0,
            switch_port_tiers: vec![(8, 10.0), (24, 15.0), (48, 25.0), (usize::MAX, 50.0)],
        }
    }
}

impl CostModel {
    /// Price of a whole switch of the given radix.
    ///
    /// # Panics
    ///
    /// Panics if `radix` exceeds every configured tier (the default model
    /// has a catch-all tier).
    pub fn switch_price(&self, radix: usize) -> f64 {
        let per_port = self
            .switch_port_tiers
            .iter()
            .find(|(max, _)| radix <= *max)
            .unwrap_or_else(|| panic!("no price tier covers radix {radix}"))
            .1;
        per_port * radix as f64
    }

    /// Full CAPEX breakdown for a measured topology.
    pub fn capex(&self, stats: &TopologyStats) -> Capex {
        let switches: f64 = stats
            .switch_radix_histogram
            .iter()
            .map(|(radix, count)| self.switch_price(*radix) * *count as f64)
            .sum();
        let nics = stats.server_ports_in_use() as f64 * self.nic_port;
        let cables = stats.wires as f64 * self.cable;
        Capex {
            name: stats.name.clone(),
            servers: stats.servers,
            switches_usd: switches,
            nics_usd: nics,
            cables_usd: cables,
        }
    }
}

/// CAPEX broken down by component class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capex {
    /// Family name.
    pub name: String,
    /// Server count (for per-server normalization).
    pub servers: u64,
    /// Switch spend (USD).
    pub switches_usd: f64,
    /// NIC spend (USD).
    pub nics_usd: f64,
    /// Cabling spend (USD).
    pub cables_usd: f64,
}

impl Capex {
    /// Total network CAPEX.
    pub fn total(&self) -> f64 {
        self.switches_usd + self.nics_usd + self.cables_usd
    }

    /// CAPEX per server — the paper's comparison axis.
    pub fn per_server(&self) -> f64 {
        self.total() / self.servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn capex_is_monotone_in_prices(
            nic in 1.0f64..100.0,
            cable in 0.5f64..50.0,
            bump in 1.0f64..20.0,
        ) {
            let p = AbcccParams::new(3, 1, 2).unwrap();
            let stats = crate::TopologyStats::quick(&Abccc::new(p).unwrap());
            let base = CostModel { nic_port: nic, cable, ..Default::default() };
            let pricier = CostModel {
                nic_port: nic + bump,
                cable: cable + bump,
                ..Default::default()
            };
            prop_assert!(pricier.capex(&stats).total() > base.capex(&stats).total());
        }

        #[test]
        fn capex_scales_linearly_with_all_prices(scale in 1.1f64..10.0) {
            let p = AbcccParams::new(3, 1, 2).unwrap();
            let stats = crate::TopologyStats::quick(&Abccc::new(p).unwrap());
            let base = CostModel::default();
            let scaled = CostModel {
                nic_port: base.nic_port * scale,
                cable: base.cable * scale,
                switch_port_tiers: base
                    .switch_port_tiers
                    .iter()
                    .map(|&(r, usd)| (r, usd * scale))
                    .collect(),
            };
            let a = base.capex(&stats).total() * scale;
            let b = scaled.capex(&stats).total();
            prop_assert!((a - b).abs() < 1e-6 * a.max(1.0));
        }
    }

    #[test]
    fn tiers_are_monotone_per_port() {
        let m = CostModel::default();
        assert_eq!(m.switch_price(4), 40.0);
        assert_eq!(m.switch_price(8), 80.0);
        assert_eq!(m.switch_price(9), 135.0);
        assert!(m.switch_price(48) < m.switch_price(49));
    }

    #[test]
    fn capex_breakdown_adds_up() {
        let p = AbcccParams::new(4, 1, 2).unwrap(); // 32 servers, m=2
        let t = Abccc::new(p).unwrap();
        let stats = TopologyStats::quick(&t);
        let m = CostModel::default();
        let c = m.capex(&stats);
        // 16 crossbars radix 2 + 2*4 level switches radix 4.
        assert_eq!(c.switches_usd, 16.0 * 20.0 + 8.0 * 40.0);
        // Every cable has one server end: wires = 2*16 + 2*16 = 64.
        assert_eq!(c.nics_usd, 64.0 * 15.0);
        assert_eq!(c.cables_usd, 64.0 * 5.0);
        assert!((c.total() - (c.switches_usd + c.nics_usd + c.cables_usd)).abs() < 1e-9);
        assert!((c.per_server() - c.total() / 32.0).abs() < 1e-9);
    }

    #[test]
    fn higher_h_costs_more_per_server_but_shrinks_diameter() {
        // The paper's tunable trade-off, in miniature.
        let m = CostModel::default();
        let cheap = AbcccParams::new(4, 2, 2).unwrap();
        let fast = AbcccParams::new(4, 2, 4).unwrap();
        let c_cheap = m.capex(&TopologyStats::quick(&Abccc::new(cheap).unwrap()));
        let c_fast = m.capex(&TopologyStats::quick(&Abccc::new(fast).unwrap()));
        assert!(c_fast.per_server() > c_cheap.per_server());
        assert!(fast.diameter() < cheap.diameter());
    }
}
