//! # dcn-metrics — the evaluation metrics of the ABCCC paper
//!
//! Everything the comparison tables and figures need:
//!
//! * [`TopologyStats`] — structural counts, exact diameter / average path
//!   length (table T1, figures F1/F2/F5);
//! * [`routing_quality`] — native-routing stretch vs BFS-optimal;
//! * [`bisection`] — exact canonical-cut bisection via max-flow plus
//!   random-bipartition probing (figure F3);
//! * [`CostModel`] / [`Capex`] — the CAPEX model (table T2);
//! * [`expansion`] — per-family expansion ledgers: new spend vs legacy
//!   impact (figure F4);
//! * [`bounds`] — theoretical throughput ceilings the simulators must
//!   respect (asserted in tests).
//!
//! ```
//! use abccc::{Abccc, AbcccParams};
//! use dcn_metrics::{CostModel, TopologyStats};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Abccc::new(AbcccParams::new(4, 1, 2)?)?;
//! let stats = TopologyStats::measure(&topo);
//! assert_eq!(stats.diameter_server_hops, Some(4)); // (k+1) + m = 2 + 2
//! let capex = CostModel::default().capex(&stats);
//! assert!(capex.per_server() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod bounds;
mod cost;
pub mod design;
pub mod expansion;
pub mod load;
mod properties;
pub mod sampling;

pub use cost::{Capex, CostModel};
pub use expansion::ExpansionLedger;
pub use properties::{routing_quality, RoutingQuality, TopologyStats};
