//! Structural property measurement for any [`Topology`].

use netgraph::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Structural properties of a materialized topology — the columns of the
/// paper's comparison table (T1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Family name with parameters.
    pub name: String,
    /// Number of servers.
    pub servers: u64,
    /// Number of switches.
    pub switches: u64,
    /// Switch radix → count.
    pub switch_radix_histogram: BTreeMap<usize, usize>,
    /// Number of cables.
    pub wires: u64,
    /// Maximum NIC ports used by any server.
    pub max_server_ports: u32,
    /// Exact diameter in server hops (`None` when skipped or disconnected).
    pub diameter_server_hops: Option<u32>,
    /// Exact average server-hop path length over ordered pairs.
    pub avg_path_length: Option<f64>,
}

impl TopologyStats {
    /// Measures cheap structural counts only (O(network size)).
    pub fn quick<T: Topology + ?Sized>(topo: &T) -> Self {
        let net = topo.network();
        TopologyStats {
            name: topo.name(),
            servers: net.server_count() as u64,
            switches: net.switch_count() as u64,
            switch_radix_histogram: net.switch_radix_histogram(),
            wires: net.link_count() as u64,
            max_server_ports: net.max_server_degree() as u32,
            diameter_server_hops: None,
            avg_path_length: None,
        }
    }

    /// Measures everything including the exact diameter and average path
    /// length (all-sources BFS — quadratic, for small/medium instances).
    ///
    /// Diameter and average path length come from **one** fused
    /// [`netgraph::DistanceEngine`] sweep; earlier versions ran a separate
    /// all-pairs sweep per metric.
    pub fn measure<T: Topology + ?Sized>(topo: &T) -> Self {
        let mut stats = Self::quick(topo);
        let net = topo.network();
        match net.server_count() {
            0 => {}
            1 => stats.diameter_server_hops = Some(0),
            _ => {
                if let Some(all) = netgraph::DistanceEngine::new(net).all_pairs() {
                    stats.diameter_server_hops = Some(all.diameter);
                    stats.avg_path_length = Some(all.avg_path_length);
                }
            }
        }
        stats
    }

    /// Total switch ports (Σ radix × count) — a cost-model input.
    pub fn total_switch_ports(&self) -> u64 {
        self.switch_radix_histogram
            .iter()
            .map(|(radix, count)| (*radix as u64) * (*count as u64))
            .sum()
    }

    /// Total server NIC ports in use (= cables minus switch-to-switch
    /// cables; for server-centric families every cable has a server end,
    /// so this equals `wires` there, while fat-trees have switch-switch
    /// tiers).
    pub fn server_ports_in_use(&self) -> u64 {
        2 * self.wires - self.total_switch_ports()
    }
}

/// Measured routing quality of a family's *native* routing algorithm
/// against the BFS-optimal baseline, over sampled pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingQuality {
    /// Family name.
    pub name: String,
    /// Pairs sampled.
    pub pairs: usize,
    /// Mean native path length (server hops).
    pub native_mean: f64,
    /// Mean BFS-optimal path length.
    pub optimal_mean: f64,
    /// Maximum native path length observed.
    pub native_max: u32,
    /// Mean stretch (native / optimal, over pairs with optimal > 0).
    pub mean_stretch: f64,
}

/// Samples `pairs` random ordered server pairs and compares native routing
/// with BFS-optimal lengths.
///
/// # Panics
///
/// Panics if the topology has fewer than two servers or native routing
/// fails on a connected fault-free network.
pub fn routing_quality<T: Topology + ?Sized>(
    topo: &T,
    pairs: usize,
    rng: &mut impl rand::Rng,
) -> RoutingQuality {
    let net = topo.network();
    let n = net.server_count();
    assert!(n >= 2, "need at least two servers");
    let mut native_sum = 0u64;
    let mut opt_sum = 0u64;
    let mut native_max = 0u32;
    let mut stretch_sum = 0.0;
    let mut stretch_count = 0usize;
    // Group samples by source so one BFS serves several pairs, and reuse
    // one scratch across sources so sampling never reallocates.
    let engine = netgraph::DistanceEngine::new(net);
    let mut scratch = netgraph::BfsScratch::new();
    let sources = pairs.div_ceil(8).max(1);
    let mut done = 0usize;
    for _ in 0..sources {
        if done >= pairs {
            break;
        }
        let src = netgraph::NodeId(rng.gen_range(0..n) as u32);
        engine.distances_into(src, &mut scratch);
        let dist = &scratch.dist;
        for _ in 0..8 {
            if done >= pairs {
                break;
            }
            let dst = netgraph::NodeId(rng.gen_range(0..n) as u32);
            if dst == src {
                continue;
            }
            let route = topo
                .route(src, dst)
                .expect("native routing failed on fault-free network");
            let native = route.server_hops(net) as u32;
            let opt = dist[dst.index()];
            assert_ne!(opt, netgraph::bfs::UNREACHABLE, "disconnected topology");
            native_sum += u64::from(native);
            opt_sum += u64::from(opt);
            native_max = native_max.max(native);
            if opt > 0 {
                stretch_sum += f64::from(native) / f64::from(opt);
                stretch_count += 1;
            }
            done += 1;
        }
    }
    RoutingQuality {
        name: topo.name(),
        pairs: done,
        native_mean: native_sum as f64 / done as f64,
        optimal_mean: opt_sum as f64 / done as f64,
        native_max,
        mean_stretch: stretch_sum / stretch_count.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abccc::{Abccc, AbcccParams};
    use dcn_baselines::prelude::{DCell, DCellParams, FatTree, FatTreeParams};
    use rand::SeedableRng;

    #[test]
    fn stats_match_formulas() {
        let p = AbcccParams::new(3, 2, 2).unwrap();
        let t = Abccc::new(p).unwrap();
        let s = TopologyStats::measure(&t);
        assert_eq!(s.servers, p.server_count());
        assert_eq!(s.switches, p.switch_count());
        assert_eq!(s.wires, p.wire_count());
        assert_eq!(s.max_server_ports, 2);
        assert_eq!(s.diameter_server_hops, Some(p.diameter() as u32));
        assert!(s.avg_path_length.unwrap() > 0.0);
        assert!(s.avg_path_length.unwrap() <= p.diameter() as f64);
    }

    #[test]
    fn port_accounting() {
        let p = AbcccParams::new(2, 1, 2).unwrap();
        let t = Abccc::new(p).unwrap();
        let s = TopologyStats::quick(&t);
        // Server-centric: every cable has exactly one server end.
        assert_eq!(s.server_ports_in_use(), s.wires);
        let ft = FatTree::new(FatTreeParams::new(4).unwrap()).unwrap();
        let fs = TopologyStats::quick(&ft);
        // Fat-tree: only the bottom tier touches servers.
        assert_eq!(fs.server_ports_in_use(), fs.servers);
    }

    #[test]
    fn routing_quality_optimal_for_abccc() {
        let p = AbcccParams::new(3, 1, 2).unwrap();
        let t = Abccc::new(p).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let q = routing_quality(&t, 64, &mut rng);
        assert!((q.mean_stretch - 1.0).abs() < 1e-12, "{q:?}");
        assert!(q.native_max as u64 <= p.diameter());
    }

    #[test]
    fn routing_quality_dcell_stretch_bounded() {
        let t = DCell::new(DCellParams::new(3, 2).unwrap()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let q = routing_quality(&t, 64, &mut rng);
        assert!(q.mean_stretch >= 1.0);
        assert!(q.mean_stretch < 1.8, "{q:?}");
    }
}
