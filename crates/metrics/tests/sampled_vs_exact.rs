//! Cross-validation of the sampled graph-metric estimators against the
//! exact all-pairs engine on tiny/paper ABCCC instances (satellite 4 of
//! the scale-frontier issue).
//!
//! The properties pin the estimator *semantics*, not just rough accuracy:
//!
//! * the sampled diameter is a certified **lower bound** on the exact
//!   diameter, and tight once every server is sampled;
//! * the sampled APL **brackets** the exact APL within its reported 95%
//!   CI — on vertex-transitive ABCCC instances every per-source mean
//!   coincides, so the interval collapses and the estimate is exact;
//! * the sampled bisection is a concrete balanced cut, hence an **upper
//!   bound** witnessed by a max-flow check on the same partition family;
//! * for a fixed `(instance, samples, seed)` the output is reproducible.

use abccc::{Abccc, AbcccParams};
use netgraph::sample::{sampled_bisection, sampled_server_metrics};
use netgraph::{DistanceEngine, Topology};
use proptest::prelude::*;

/// Tiny and paper-sized instances: crossbar topologies (m ≥ 2) and the
/// BCube-degenerate m = 1 corner, all small enough for exact all-pairs.
const GRIDS: [(u32, u32, u32); 5] = [(2, 2, 2), (3, 2, 2), (3, 1, 2), (2, 3, 3), (4, 2, 2)];

fn topo(n: u32, k: u32, h: u32) -> Abccc {
    Abccc::new(AbcccParams::new(n, k, h).expect("params")).expect("topology")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampled diameter/APL vs the exact `DistanceEngine` sweep: the
    /// diameter estimate never exceeds the exact value, the APL estimate
    /// brackets the exact value within its reported CI, and sampling every
    /// server degenerates to the exact computation.
    #[test]
    fn sampled_metrics_bracket_exact(which in 0..GRIDS.len(), samples in 1usize..64, seed in 0u64..1000) {
        let (n, k, h) = GRIDS[which];
        let topo = topo(n, k, h);
        let net = topo.network();
        let exact = DistanceEngine::new(net)
            .all_pairs()
            .expect("connected instance has exact all-pairs stats");

        let sampled = sampled_server_metrics(net, samples, seed)
            .expect("connected ABCCC instance with ≥ 2 servers");
        prop_assert_eq!(sampled.seed, seed);
        prop_assert_eq!(
            sampled.apl.samples,
            samples.min(net.server_count()),
            "sources are drawn without replacement"
        );

        // Diameter: every sampled eccentricity is exact, so the max is a
        // certified lower bound.
        prop_assert!(
            sampled.diameter_lb <= exact.diameter,
            "sampled diameter {} exceeds exact {}",
            sampled.diameter_lb,
            exact.diameter
        );

        // APL: the exact value must lie inside the reported interval.
        prop_assert!(
            sampled.apl.brackets(exact.avg_path_length),
            "exact APL {} outside sampled {} ± {}",
            exact.avg_path_length,
            sampled.apl.mean,
            sampled.apl.ci95
        );

        // Full coverage ⇒ the estimate *is* the exact computation.
        if samples >= net.server_count() {
            prop_assert_eq!(sampled.diameter_lb, exact.diameter);
            prop_assert!((sampled.apl.mean - exact.avg_path_length).abs() < 1e-9);
            prop_assert!(sampled.apl.ci95 < 1e-9);
        }
    }

    /// Reproducibility: the estimators are pure functions of
    /// `(instance, samples/trials, seed)` — re-running yields the same
    /// structs bit for bit, which is what lets `check.sh` compare digests.
    #[test]
    fn sampled_metrics_are_reproducible(which in 0..GRIDS.len(), samples in 1usize..32, trials in 1usize..5, seed in 0u64..1000) {
        let (n, k, h) = GRIDS[which];
        let topo = topo(n, k, h);
        let net = topo.network();

        let a = sampled_server_metrics(net, samples, seed).expect("metrics");
        let b = sampled_server_metrics(net, samples, seed).expect("metrics");
        prop_assert_eq!(a, b);

        let ba = sampled_bisection(net, trials, seed).expect("bisection");
        let bb = sampled_bisection(net, trials, seed).expect("bisection");
        prop_assert_eq!(ba.clone(), bb);

        // Sanity on the bisection aggregate: the minimum over trials never
        // exceeds the mean, and both are positive on a connected instance.
        prop_assert!(ba.min_cut > 0);
        prop_assert!(ba.mean_cut >= ba.min_cut as f64);
        prop_assert_eq!(ba.trials, trials);
    }
}
