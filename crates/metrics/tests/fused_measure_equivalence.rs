//! Equivalence of the fused single-sweep `TopologyStats::measure` with the
//! seed's two-pass computation (one all-pairs sweep for the diameter, a
//! second for the average path length) on the concrete paper topologies.

use abccc::{Abccc, AbcccParams};
use dcn_baselines::prelude::{BCube, BCubeParams, Bccc, BcccParams};
use dcn_metrics::TopologyStats;
use netgraph::{Network, NodeId, Topology};

/// The seed implementation of `measure`'s expensive half, reconstructed:
/// two independent full sweeps of per-source BFS with fresh allocations.
fn two_pass(net: &Network) -> (Option<u32>, Option<f64>) {
    let servers: Vec<NodeId> = net.server_ids().collect();
    let mut diameter = 0u32;
    for &s in &servers {
        let dist = netgraph::bfs::server_hop_distances(net, s, None);
        for &t in &servers {
            assert_ne!(dist[t.index()], netgraph::bfs::UNREACHABLE);
            diameter = diameter.max(dist[t.index()]);
        }
    }
    let mut total = 0u64;
    for &s in &servers {
        let dist = netgraph::bfs::server_hop_distances(net, s, None);
        for &t in &servers {
            total += u64::from(dist[t.index()]);
        }
    }
    let n = servers.len() as f64;
    (Some(diameter), Some(total as f64 / (n * (n - 1.0))))
}

fn assert_fused_matches<T: Topology>(topo: &T) {
    let stats = TopologyStats::measure(topo);
    let (diameter, apl) = two_pass(topo.network());
    assert_eq!(stats.diameter_server_hops, diameter, "{}", topo.name());
    // Same exact u64 distance total divided by the same pair count: the
    // fused sweep must agree bit for bit, not just approximately.
    assert_eq!(stats.avg_path_length, apl, "{}", topo.name());
}

#[test]
fn fused_measure_matches_two_pass_on_abccc() {
    for (n, k, h) in [(2, 1, 2), (3, 1, 2), (2, 2, 2), (4, 2, 2)] {
        let topo = Abccc::new(AbcccParams::new(n, k, h).unwrap()).unwrap();
        assert_fused_matches(&topo);
    }
}

#[test]
fn fused_measure_matches_two_pass_on_bccc() {
    for (n, k) in [(2, 1), (3, 1), (2, 2)] {
        let topo = Bccc::new(BcccParams::new(n, k).unwrap()).unwrap();
        assert_fused_matches(&topo);
    }
}

#[test]
fn fused_measure_matches_two_pass_on_bcube() {
    for (n, k) in [(2, 1), (4, 1), (3, 2)] {
        let topo = BCube::new(BCubeParams::new(n, k).unwrap()).unwrap();
        assert_fused_matches(&topo);
    }
}
