//! Property tests for the arena rivals: Jellyfish construction must be a
//! pure function of its parameters (seed included) regardless of how many
//! threads build it, and Space Shuffle greedy routing must stay within its
//! proven stretch bound of the true BFS shortest path.

use dcn_baselines::prelude::*;
use netgraph::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The graph is a pure function of the seed: building the same params
    /// concurrently on 1, 2, 4, and 8 threads yields byte-identical link
    /// tables (and two different seeds yield different graphs, so the
    /// comparison is not vacuous).
    #[test]
    fn jellyfish_build_is_thread_count_invariant(
        v in 8u32..=24,
        seed in any::<u64>(),
    ) {
        let p = JellyfishParams::new(v, 4, 1, seed).expect("params");
        let reference = Jellyfish::new(p).expect("build");
        let reference_links = format!("{:?}", reference.network().links());
        for threads in [1usize, 2, 4, 8] {
            let built: Vec<String> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let t = Jellyfish::new(p).expect("build");
                            format!("{:?}", t.network().links())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("join")).collect()
            });
            for links in built {
                prop_assert_eq!(&links, &reference_links);
            }
        }
    }

    /// Every Jellyfish draw is connected, r-regular on the switch layer,
    /// and hosts exactly s servers per switch.
    #[test]
    fn jellyfish_is_connected_and_r_regular(
        v in 6u32..=30,
        r in 2u32..=5,
        s in 1u32..=2,
        seed in any::<u64>(),
    ) {
        prop_assume!(r < v && (u64::from(v) * u64::from(r)) % 2 == 0);
        let p = JellyfishParams::new(v, r, s, seed).expect("params");
        let t = Jellyfish::new(p).expect("build");
        prop_assert!(netgraph::connectivity::servers_connected(t.network(), None));
        for sw in t.network().switch_ids() {
            prop_assert_eq!(t.network().degree(sw) as u32, r + s);
        }
        prop_assert_eq!(t.network().server_count() as u64, p.server_count());
        prop_assert_eq!(t.network().link_count() as u64, p.wire_count());
    }

    /// Greedy multi-space routing is never shorter than the BFS optimum
    /// and never longer than the proven bound: the minimum circular ring
    /// distance between the host switches, plus the two server links.
    #[test]
    fn spaceshuffle_greedy_within_stretch_bound_of_bfs(
        v in 4u32..=20,
        d in 1u32..=3,
        seed in any::<u64>(),
    ) {
        let p = SpaceShuffleParams::new(v, d, 1, seed).expect("params");
        let t = SpaceShuffle::new(p).expect("build");
        let n = p.server_count() as u32;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let r = t.route(NodeId(src), NodeId(dst)).expect("route");
                prop_assert!(r.validate(t.network(), None).is_ok());
                let bfs = netgraph::bfs::link_shortest_path(
                    t.network(), NodeId(src), NodeId(dst), None,
                ).expect("connected");
                let (ssw, dsw) = (src / p.s(), dst / p.s());
                let bound = t.min_space_distance(ssw, dsw) as usize + 2;
                prop_assert!(r.link_hops() >= bfs.len() - 1);
                prop_assert!(
                    r.link_hops() <= bound,
                    "greedy {} hops vs bfs {} and bound {bound}",
                    r.link_hops(), bfs.len() - 1
                );
            }
        }
    }
}
