//! Property tests for the baseline families: native routing must always
//! produce valid routes with the documented length guarantees.

use dcn_baselines::prelude::*;
use netgraph::{NodeId, Topology};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bcube_routing_is_always_shortest(
        n in 2u32..=4,
        k in 1u32..=2,
        seed in any::<u64>(),
    ) {
        let p = BCubeParams::new(n, k).expect("params");
        prop_assume!(p.server_count() <= 300);
        let t = BCube::new(p).expect("build");
        let engine = netgraph::DistanceEngine::new(t.network());
        let mut scratch = netgraph::BfsScratch::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..12 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let r = t.route(s, d).expect("route");
            prop_assert!(r.validate(t.network(), None).is_ok());
            engine.distances_into(s, &mut scratch);
            prop_assert_eq!(r.server_hops(t.network()) as u32, scratch.dist[d.index()]);
        }
    }

    #[test]
    fn bcube_parallel_routes_disjoint(
        n in 2u32..=4,
        k in 1u32..=2,
        seed in any::<u64>(),
    ) {
        let p = BCubeParams::new(n, k).expect("params");
        prop_assume!(p.server_count() <= 300);
        let t = BCube::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let routes = t.parallel_routes(s, d, 8).expect("routes");
        prop_assert!(!routes.is_empty());
        for r in &routes {
            prop_assert!(r.validate(t.network(), None).is_ok());
        }
        for i in 0..routes.len() {
            for j in (i + 1)..routes.len() {
                prop_assert!(routes[i].is_internally_disjoint_from(&routes[j]));
            }
        }
    }

    #[test]
    fn dcell_routing_valid_and_bounded(
        n in 2u32..=4,
        k in 1u32..=2,
        seed in any::<u64>(),
    ) {
        let p = DCellParams::new(n, k).expect("params");
        prop_assume!(p.server_count() <= 500);
        let t = DCell::new(p.clone()).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..12 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let r = t.route(s, d).expect("route");
            prop_assert!(r.validate(t.network(), None).is_ok(), "{s}->{d}");
            prop_assert!(r.server_hops(t.network()) as u64 <= p.diameter_bound());
        }
    }

    #[test]
    fn fattree_routes_valid_and_at_most_six_links(
        p in prop::sample::select(vec![4u32, 6, 8]),
        seed in any::<u64>(),
    ) {
        let fp = FatTreeParams::new(p).expect("params");
        let t = FatTree::new(fp).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let s = NodeId(rng.gen_range(0..fp.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..fp.server_count()) as u32);
            let r = t.route(s, d).expect("route");
            prop_assert!(r.validate(t.network(), None).is_ok());
            prop_assert!(r.link_hops() as u64 <= fp.link_diameter());
        }
    }

    #[test]
    fn hypercube_ecube_is_shortest(
        n in 2u32..=4,
        d in 1u32..=3,
        seed in any::<u64>(),
    ) {
        let p = HypercubeParams::new(n, d).expect("params");
        prop_assume!(p.server_count() <= 256);
        let t = Hypercube::new(p).expect("build");
        let engine = netgraph::DistanceEngine::new(t.network());
        let mut scratch = netgraph::BfsScratch::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..12 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let dst = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let r = t.route(s, dst).expect("route");
            prop_assert!(r.validate(t.network(), None).is_ok());
            engine.distances_into(s, &mut scratch);
            prop_assert_eq!(r.server_hops(t.network()) as u32, scratch.dist[dst.index()]);
        }
    }

    #[test]
    fn every_family_is_connected(
        seed in any::<u64>(),
    ) {
        let _ = seed;
        let nets: Vec<Box<dyn Topology>> = vec![
            Box::new(BCube::new(BCubeParams::new(3, 1).expect("p")).expect("b")),
            Box::new(Bccc::new(BcccParams::new(3, 1).expect("p")).expect("b")),
            Box::new(DCell::new(DCellParams::new(3, 1).expect("p")).expect("b")),
            Box::new(FatTree::new(FatTreeParams::new(4).expect("p")).expect("b")),
            Box::new(Hypercube::new(HypercubeParams::new(3, 2).expect("p")).expect("b")),
        ];
        for t in &nets {
            prop_assert!(netgraph::connectivity::servers_connected(t.network(), None),
                "{}", t.name());
        }
    }
}
