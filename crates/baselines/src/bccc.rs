//! BCCC (BCube Connected Crossbars) — the dual-port predecessor of ABCCC.
//!
//! `BCCC(n, k)` is exactly `ABCCC(n, k, 2)`: every server has two NIC
//! ports, one to its group crossbar and one to its single owned cube level,
//! so groups have `m = k + 1` members. The implementation delegates to the
//! [`abccc`] crate (the degeneration is verified structurally in tests),
//! which keeps the two families consistent by construction while still
//! giving BCCC its own name, parameter set and closed forms for the
//! comparison tables.

use abccc::{Abccc, AbcccParams};
use netgraph::{FaultMask, Network, NetworkError, NodeId, Route, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a `BCCC(n, k)` network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BcccParams {
    inner: AbcccParams,
}

impl BcccParams {
    /// Creates and validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] on out-of-range values.
    pub fn new(n: u32, k: u32) -> Result<Self, NetworkError> {
        Ok(BcccParams {
            inner: AbcccParams::new(n, k, 2)?,
        })
    }

    /// Switch radix `n`.
    pub fn n(&self) -> u32 {
        self.inner.n()
    }

    /// Order `k`.
    pub fn k(&self) -> u32 {
        self.inner.k()
    }

    /// Servers: `(k+1) · n^(k+1)`.
    pub fn server_count(&self) -> u64 {
        self.inner.server_count()
    }

    /// Switches: `n^(k+1)` crossbars plus `(k+1) · n^k` level switches.
    pub fn switch_count(&self) -> u64 {
        self.inner.switch_count()
    }

    /// Cables.
    pub fn wire_count(&self) -> u64 {
        self.inner.wire_count()
    }

    /// Diameter in server hops: `2(k + 1)`.
    pub fn diameter(&self) -> u64 {
        self.inner.diameter()
    }

    /// Bisection width in links for even `n`.
    pub fn bisection_width(&self) -> Option<u64> {
        self.inner.bisection_width()
    }

    /// The equivalent ABCCC parameterization (`h = 2`).
    pub fn as_abccc(&self) -> AbcccParams {
        self.inner
    }
}

impl fmt::Display for BcccParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BCCC({},{})", self.n(), self.k())
    }
}

impl std::str::FromStr for BcccParams {
    type Err = NetworkError;

    /// Parses the bare pair `"4,2"` or the [`fmt::Display`] form
    /// `"BCCC(4,2)"`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let v = crate::family::parse_positional(
            crate::family::strip_display_wrapper(text, "bccc"),
            &["n", "k"],
        )?;
        BcccParams::new(v[0], v[1])
    }
}

/// A materialized `BCCC(n, k)` network.
#[derive(Debug, Clone)]
pub struct Bccc {
    params: BcccParams,
    inner: Abccc,
}

impl Bccc {
    /// Builds the network with unit link capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: BcccParams) -> Result<Self, NetworkError> {
        Ok(Bccc {
            params,
            inner: Abccc::new(params.inner)?,
        })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &BcccParams {
        &self.params
    }

    /// Access to the underlying ABCCC machinery (addresses, parallel paths,
    /// expansion planning) — everything there applies verbatim to BCCC.
    pub fn as_abccc(&self) -> &Abccc {
        &self.inner
    }
}

impl Topology for Bccc {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        self.inner.network()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        self.inner.route(src, dst)
    }

    fn parallel_routes(
        &self,
        src: NodeId,
        dst: NodeId,
        want: usize,
    ) -> Result<Vec<Route>, RouteError> {
        self.inner.parallel_routes(src, dst, want)
    }

    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: &FaultMask,
    ) -> Result<Route, RouteError> {
        self.inner.route_avoiding(src, dst, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_dual_port() {
        let p = BcccParams::new(3, 2).unwrap();
        let t = Bccc::new(p).unwrap();
        for s in t.network().server_ids() {
            assert_eq!(t.network().degree(s), 2);
        }
    }

    #[test]
    fn counts_and_diameter() {
        let p = BcccParams::new(4, 2).unwrap();
        assert_eq!(p.server_count(), 3 * 64);
        assert_eq!(p.switch_count(), 64 + 3 * 16);
        assert_eq!(p.diameter(), 2 * 3);
        let t = Bccc::new(p).unwrap();
        assert_eq!(
            netgraph::bfs::server_diameter(t.network()),
            Some(p.diameter() as u32)
        );
    }

    #[test]
    fn routing_works() {
        let p = BcccParams::new(2, 2).unwrap();
        let t = Bccc::new(p).unwrap();
        let last = NodeId((p.server_count() - 1) as u32);
        let r = t.route(NodeId(0), last).unwrap();
        r.validate(t.network(), None).unwrap();
        assert!(r.server_hops(t.network()) as u64 <= p.diameter());
    }

    #[test]
    fn display() {
        assert_eq!(BcccParams::new(6, 3).unwrap().to_string(), "BCCC(6,3)");
    }
}
