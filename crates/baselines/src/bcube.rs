//! BCube (Guo et al., SIGCOMM 2009) — the ancestor ABCCC is measured
//! against.
//!
//! `BCube(n, k)` has `n^(k+1)` servers with `k + 1` NIC ports each and
//! `k + 1` levels of `n`-port switches (`n^k` per level); the level-`i`
//! switch connects the `n` servers whose addresses differ only in digit
//! `i`. Its diameter (`k + 1`) is unbeatable, but every expansion by one
//! order retrofits a NIC into *every* existing server — the expansion cost
//! the ABCCC paper attacks.

use netgraph::{Network, NetworkError, NodeId, Route, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a `BCube(n, k)` network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BCubeParams {
    n: u32,
    k: u32,
}

impl BCubeParams {
    /// Creates and validates parameters (`2 ≤ n ≤ 1024`, `k ≤ 19`).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] on out-of-range values.
    pub fn new(n: u32, k: u32) -> Result<Self, NetworkError> {
        if !(2..=1024).contains(&n) {
            return Err(NetworkError::InvalidParameter {
                name: "n",
                reason: format!("switch radix must be in 2..=1024, got {n}"),
            });
        }
        if k > 19 {
            return Err(NetworkError::InvalidParameter {
                name: "k",
                reason: format!("order must be at most 19, got {k}"),
            });
        }
        Ok(BCubeParams { n, k })
    }

    /// Switch radix `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Order `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Digit positions `k + 1`.
    pub fn levels(&self) -> u32 {
        self.k + 1
    }

    /// Servers: `n^(k+1)`.
    pub fn server_count(&self) -> u64 {
        u64::from(self.n).pow(self.levels())
    }

    /// Switches: `(k+1) · n^k`.
    pub fn switch_count(&self) -> u64 {
        u64::from(self.levels()) * u64::from(self.n).pow(self.k)
    }

    /// Cables: `(k+1) · n^(k+1)` (every server has a cable per level).
    pub fn wire_count(&self) -> u64 {
        u64::from(self.levels()) * self.server_count()
    }

    /// NIC ports per server: `k + 1`.
    pub fn ports_per_server(&self) -> u32 {
        self.levels()
    }

    /// Diameter in server hops: `k + 1`.
    pub fn diameter(&self) -> u64 {
        u64::from(self.levels())
    }

    /// Bisection width in links for even `n`: `n^(k+1) / 2`.
    pub fn bisection_width(&self) -> Option<u64> {
        self.n.is_multiple_of(2).then(|| self.server_count() / 2)
    }

    /// NICs that must be added to existing servers when growing to order
    /// `k + 1`: one per existing server (the BCube expansion penalty).
    pub fn expansion_nics_added(&self) -> u64 {
        self.server_count()
    }

    fn digit(&self, label: u64, level: u32) -> u32 {
        ((label / u64::from(self.n).pow(level)) % u64::from(self.n)) as u32
    }

    fn with_digit(&self, label: u64, level: u32, d: u32) -> u64 {
        let pw = u64::from(self.n).pow(level) as i64;
        let old = self.digit(label, level);
        (label as i64 + (i64::from(d) - i64::from(old)) * pw) as u64
    }

    fn rest_index(&self, label: u64, level: u32) -> u64 {
        let n = u64::from(self.n);
        let pw = n.pow(level);
        (label % pw) + (label / (pw * n)) * pw
    }

    fn switch_id(&self, level: u32, rest: u64) -> NodeId {
        let per_level = u64::from(self.n).pow(self.k);
        NodeId((self.server_count() + u64::from(level) * per_level + rest) as u32)
    }
}

impl fmt::Display for BCubeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BCube({},{})", self.n, self.k)
    }
}

impl std::str::FromStr for BCubeParams {
    type Err = NetworkError;

    /// Parses the bare pair `"4,1"` or the [`fmt::Display`] form
    /// `"BCube(4,1)"`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let v = crate::family::parse_positional(
            crate::family::strip_display_wrapper(text, "bcube"),
            &["n", "k"],
        )?;
        BCubeParams::new(v[0], v[1])
    }
}

/// A materialized `BCube(n, k)` network with its native single-path routing
/// (digit correction in a fixed order).
#[derive(Debug, Clone)]
pub struct BCube {
    params: BCubeParams,
    net: Network,
}

impl BCube {
    /// Builds the network with unit link capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: BCubeParams) -> Result<Self, NetworkError> {
        let nodes = params.server_count() + params.switch_count();
        if nodes > abccc::MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(nodes),
                limit: u128::from(abccc::MAX_MATERIALIZED_NODES),
            });
        }
        let mut net = Network::with_capacity(nodes as usize, params.wire_count() as usize);
        for _ in 0..params.server_count() {
            net.add_server();
        }
        for _ in 0..params.switch_count() {
            net.add_switch();
        }
        let n = u64::from(params.n);
        for level in 0..params.levels() {
            for rest in 0..n.pow(params.k) {
                let sw = params.switch_id(level, rest);
                for d in 0..params.n {
                    // Reinsert digit d at `level` into `rest`.
                    let pw = n.pow(level);
                    let label = (rest / pw) * pw * n + u64::from(d) * pw + (rest % pw);
                    net.add_link(NodeId(label as u32), sw, 1.0);
                }
            }
        }
        debug_assert_eq!(net.link_count() as u64, params.wire_count());
        Ok(BCube { params, net })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &BCubeParams {
        &self.params
    }

    /// BCubeRouting with an explicit level-correction order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the differing levels.
    pub fn route_with_order(&self, src: NodeId, dst: NodeId, order: &[u32]) -> Route {
        let p = &self.params;
        let (a, b) = (u64::from(src.0), u64::from(dst.0));
        let diff: Vec<u32> = (0..p.levels())
            .filter(|&i| p.digit(a, i) != p.digit(b, i))
            .collect();
        {
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, diff, "order must permute the differing levels");
        }
        let mut nodes = vec![src];
        let mut cur = a;
        for &level in order {
            nodes.push(p.switch_id(level, p.rest_index(cur, level)));
            cur = p.with_digit(cur, level, p.digit(b, level));
            nodes.push(NodeId(cur as u32));
        }
        Route::new(nodes)
    }
}

impl Topology for BCube {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        let p = &self.params;
        if u64::from(src.0) >= p.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= p.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        let order: Vec<u32> = (0..p.levels())
            .filter(|&i| p.digit(u64::from(src.0), i) != p.digit(u64::from(dst.0), i))
            .collect();
        Ok(self.route_with_order(src, dst, &order))
    }

    fn parallel_routes(
        &self,
        src: NodeId,
        dst: NodeId,
        want: usize,
    ) -> Result<Vec<Route>, RouteError> {
        // DPSP-style construction: rotations of the ascending correction
        // order start each path through a different first-level switch; a
        // greedy disjointness filter keeps an internally disjoint subset.
        let p = &self.params;
        if u64::from(src.0) >= p.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= p.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        if src == dst {
            return Ok(vec![Route::new(vec![src])]);
        }
        let diff: Vec<u32> = (0..p.levels())
            .filter(|&i| p.digit(u64::from(src.0), i) != p.digit(u64::from(dst.0), i))
            .collect();
        let mut chosen: Vec<Route> = Vec::new();
        for r in 0..diff.len().max(1) {
            if chosen.len() >= want {
                break;
            }
            let mut order = diff.clone();
            order.rotate_left(r);
            let candidate = self.route_with_order(src, dst, &order);
            if chosen
                .iter()
                .all(|c| candidate.is_internally_disjoint_from(c))
            {
                chosen.push(candidate);
            }
        }
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let p = BCubeParams::new(4, 1).unwrap();
        assert_eq!(p.server_count(), 16);
        assert_eq!(p.switch_count(), 8);
        assert_eq!(p.wire_count(), 32);
        let t = BCube::new(p).unwrap();
        assert_eq!(t.network().server_count(), 16);
        assert_eq!(t.network().switch_count(), 8);
        assert_eq!(t.network().link_count(), 32);
        assert!(t.network().is_servers_first());
    }

    #[test]
    fn every_switch_has_radix_n() {
        let p = BCubeParams::new(3, 2).unwrap();
        let t = BCube::new(p).unwrap();
        for sw in t.network().switch_ids() {
            assert_eq!(t.network().degree(sw), 3);
        }
        for s in t.network().server_ids() {
            assert_eq!(t.network().degree(s) as u32, p.ports_per_server());
        }
    }

    #[test]
    fn diameter_matches_bfs() {
        for (n, k) in [(2, 1), (3, 1), (2, 2), (4, 1), (2, 3)] {
            let p = BCubeParams::new(n, k).unwrap();
            let t = BCube::new(p).unwrap();
            assert_eq!(
                netgraph::bfs::server_diameter(t.network()),
                Some(p.diameter() as u32),
                "{p}"
            );
        }
    }

    #[test]
    fn routing_is_shortest() {
        let p = BCubeParams::new(3, 2).unwrap();
        let t = BCube::new(p).unwrap();
        let engine = netgraph::DistanceEngine::new(t.network());
        let mut scratch = netgraph::BfsScratch::new();
        for s in 0..p.server_count() {
            let src = NodeId(s as u32);
            engine.distances_into(src, &mut scratch);
            for d in (0..p.server_count()).step_by(5) {
                let dst = NodeId(d as u32);
                let r = t.route(src, dst).unwrap();
                r.validate(t.network(), None).unwrap();
                assert_eq!(r.server_hops(t.network()) as u32, scratch.dist[dst.index()]);
            }
        }
    }

    #[test]
    fn bisection_exact_small() {
        let p = BCubeParams::new(2, 1).unwrap(); // 4 servers
        let t = BCube::new(p).unwrap();
        // Canonical bipartition: by top digit.
        let side: Vec<bool> = (0..t.network().node_count())
            .map(|i| (i as u64) < p.server_count() && p.digit(i as u64, p.k()) == 0)
            .collect();
        assert_eq!(
            netgraph::maxflow::bisection_width(t.network(), &side),
            p.bisection_width().unwrap()
        );
    }

    #[test]
    fn matches_abccc_degenerate_endpoint() {
        // BCube(n, k) must be structurally identical to ABCCC(n, k, k+2).
        let p = BCubeParams::new(3, 1).unwrap();
        let t = BCube::new(p).unwrap();
        let ap = abccc::AbcccParams::new(3, 1, 3).unwrap();
        let at = abccc::Abccc::new(ap).unwrap();
        assert_eq!(t.network().server_count(), at.network().server_count());
        assert_eq!(t.network().switch_count(), at.network().switch_count());
        assert_eq!(t.network().link_count(), at.network().link_count());
        // Same id layout ⇒ link sets must coincide exactly.
        for link in t.network().links() {
            assert!(at.network().find_link(link.a, link.b).is_some());
        }
    }

    #[test]
    fn route_rejects_switch_endpoint() {
        let p = BCubeParams::new(2, 1).unwrap();
        let t = BCube::new(p).unwrap();
        let sw = NodeId(p.server_count() as u32);
        assert!(t.route(sw, NodeId(0)).is_err());
    }
}
