//! The `TopologyFamily` descriptor API — one registration per family.
//!
//! Every network family is described by a parameter type implementing
//! [`FamilyParams`] (a uniform `FromStr`/`Display` pair plus closed-form
//! counts and a builder). The zero-sized adapter [`Family`] erases the
//! parameter type behind the object-safe [`TopologyFamily`] trait, and
//! [`families`] is the single registry every consumer (the bench cache,
//! the experiment registry, the resilience CLI) walks instead of keeping
//! its own `match` over family names. Adding a family is therefore one
//! `impl FamilyParams` plus one entry in [`families`].
//!
//! Specs are round-trip text: `family:params`, e.g. `abccc:4,2,3` or
//! `jellyfish:v=16,r=4,s=1,seed=7`. [`parse_spec`] also accepts the
//! human-facing label form `ABCCC(4,2,3)` that [`TopologyFamily::label`]
//! and `Topology::name` produce, so labels re-parse.

use crate::{
    BCube, BCubeParams, Bccc, BcccParams, DCell, DCellParams, FatTree, FatTreeParams, Hypercube,
    HypercubeParams, Jellyfish, JellyfishParams, SpaceShuffle, SpaceShuffleParams,
};
use abccc::{Abccc, AbcccParams};
use netgraph::{NetworkError, Topology};
use std::fmt;
use std::marker::PhantomData;
use std::str::FromStr;

// ---------------------------------------------------------------------------
// Parsing helpers shared by the per-family `FromStr` implementations.
// ---------------------------------------------------------------------------

/// Strips the `Display` wrapper `Family(...)` (matched case-insensitively
/// against `family`) from `text`, returning the bare parameter body. Text
/// without the wrapper is returned trimmed, so both `"BCCC(4,2)"` and
/// `"4,2"` parse through the same code path.
pub fn strip_display_wrapper<'a>(text: &'a str, family: &str) -> &'a str {
    let t = text.trim();
    if let Some(open) = t.find('(') {
        if t.ends_with(')') && t[..open].trim().eq_ignore_ascii_case(family) {
            return t[open + 1..t.len() - 1].trim();
        }
    }
    t
}

/// Splits one `key=value` field, trimming both sides.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] if `field` has no `=`.
pub fn key_value(field: &str) -> Result<(&str, &str), NetworkError> {
    field
        .split_once('=')
        .map(|(k, v)| (k.trim(), v.trim()))
        .ok_or_else(|| NetworkError::InvalidParameter {
            name: "spec",
            reason: format!("expected key=value, got `{field}`"),
        })
}

/// Parses a `u32` field with a labeled error.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] if `value` is not a `u32`.
pub fn parse_u32(name: &'static str, value: &str) -> Result<u32, NetworkError> {
    value
        .trim()
        .parse()
        .map_err(|_| NetworkError::InvalidParameter {
            name,
            reason: format!("`{value}` is not an unsigned integer"),
        })
}

/// Parses a `u64` field with a labeled error.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] if `value` is not a `u64`.
pub fn parse_u64(name: &'static str, value: &str) -> Result<u64, NetworkError> {
    value
        .trim()
        .parse()
        .map_err(|_| NetworkError::InvalidParameter {
            name,
            reason: format!("`{value}` is not an unsigned integer"),
        })
}

/// Parses a comma-separated positional body into exactly `names.len()`
/// integers (the `n,k` style of the cube families).
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] on arity or numeric errors.
pub fn parse_positional(
    body: &str,
    names: &'static [&'static str],
) -> Result<Vec<u32>, NetworkError> {
    let parts: Vec<&str> = body.split(',').map(str::trim).collect();
    if parts.len() != names.len() {
        return Err(NetworkError::InvalidParameter {
            name: "spec",
            reason: format!("expected `{}`, got `{body}`", names.join(",")),
        });
    }
    parts
        .iter()
        .zip(names)
        .map(|(part, name)| parse_u32(name, part))
        .collect()
}

// ---------------------------------------------------------------------------
// The typed side of the API.
// ---------------------------------------------------------------------------

/// A family's parameter type: text round-trip, closed-form counts, and the
/// builder. Implemented once per family; consumed through [`Family`].
pub trait FamilyParams:
    FromStr<Err = NetworkError> + fmt::Display + Clone + Send + Sync + 'static
{
    /// Lowercase spec id, e.g. `"jellyfish"`.
    const FAMILY: &'static str;
    /// Human-facing name used in labels, e.g. `"Jellyfish"`.
    const DISPLAY_NAME: &'static str;
    /// One-line description for CLI help.
    const SUMMARY: &'static str;
    /// Spec syntax for CLI help, e.g. `"jellyfish:v=<v>,r=<r>[,s=<s>][,seed=<seed>]"`.
    const SYNTAX: &'static str;

    /// Canonical parameter text (the part after `family:`); parsing it
    /// back yields an equal value.
    fn canonical(&self) -> String;

    /// Closed-form server count — no materialization.
    fn servers(&self) -> u64;

    /// Materializes the network.
    ///
    /// # Errors
    ///
    /// Returns the family's construction error (size guards etc.).
    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError>;

    /// Closed-form server-hop diameter, if the family proves one.
    fn diameter_formula(&self) -> Option<u64> {
        None
    }

    /// An ascending ladder of valid configurations with at most
    /// `max_servers` servers — the search space of the sizing helpers.
    fn ladder(max_servers: u64) -> Vec<Self>;
}

// ---------------------------------------------------------------------------
// The object-safe side, consumed by cache / registry / CLI.
// ---------------------------------------------------------------------------

/// Object-safe view of one family, operating on parameter *text* so callers
/// need no knowledge of the parameter type. Obtain instances from
/// [`families`] or [`find`].
pub trait TopologyFamily: Send + Sync {
    /// Lowercase spec id (`"abccc"`, `"jellyfish"`, …).
    fn name(&self) -> &'static str;
    /// Human-facing name used in labels.
    fn display_name(&self) -> &'static str;
    /// One-line description for CLI help.
    fn summary(&self) -> &'static str;
    /// Spec syntax for CLI help.
    fn syntax(&self) -> &'static str;

    /// Validates `params` text and returns its canonical form.
    ///
    /// # Errors
    ///
    /// Returns the family's parse/validation error.
    fn canonicalize(&self, params: &str) -> Result<String, NetworkError>;

    /// Closed-form server count of `params`.
    ///
    /// # Errors
    ///
    /// Returns the family's parse/validation error.
    fn server_count(&self, params: &str) -> Result<u64, NetworkError>;

    /// Closed-form server-hop diameter of `params`, if the family has one.
    ///
    /// # Errors
    ///
    /// Returns the family's parse/validation error.
    fn diameter_formula(&self, params: &str) -> Result<Option<u64>, NetworkError>;

    /// Materializes the network described by `params`.
    ///
    /// # Errors
    ///
    /// Returns the family's parse/validation/construction error.
    fn build(&self, params: &str) -> Result<Box<dyn Topology + Send + Sync>, NetworkError>;

    /// Ascending canonical configurations with at most `max_servers`
    /// servers.
    fn ladder(&self, max_servers: u64) -> Vec<String>;

    /// The human-facing label `Display(params)`, formattable even for
    /// invalid parameter text (labels appear in error messages).
    fn label(&self, params: &str) -> String {
        format!("{}({})", self.display_name(), params)
    }
}

/// Zero-sized adapter from a [`FamilyParams`] type to the object-safe
/// [`TopologyFamily`] trait.
pub struct Family<P>(PhantomData<P>);

impl<P: FamilyParams> Family<P> {
    /// The (only) value of this adapter type.
    pub const NEW: Self = Family(PhantomData);
}

impl<P: FamilyParams> TopologyFamily for Family<P> {
    fn name(&self) -> &'static str {
        P::FAMILY
    }

    fn display_name(&self) -> &'static str {
        P::DISPLAY_NAME
    }

    fn summary(&self) -> &'static str {
        P::SUMMARY
    }

    fn syntax(&self) -> &'static str {
        P::SYNTAX
    }

    fn canonicalize(&self, params: &str) -> Result<String, NetworkError> {
        Ok(params.parse::<P>()?.canonical())
    }

    fn server_count(&self, params: &str) -> Result<u64, NetworkError> {
        Ok(params.parse::<P>()?.servers())
    }

    fn diameter_formula(&self, params: &str) -> Result<Option<u64>, NetworkError> {
        Ok(params.parse::<P>()?.diameter_formula())
    }

    fn build(&self, params: &str) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        params.parse::<P>()?.build_topology()
    }

    fn ladder(&self, max_servers: u64) -> Vec<String> {
        P::ladder(max_servers).iter().map(P::canonical).collect()
    }
}

// ---------------------------------------------------------------------------
// FamilyParams implementations.
// ---------------------------------------------------------------------------

impl FamilyParams for AbcccParams {
    const FAMILY: &'static str = "abccc";
    const DISPLAY_NAME: &'static str = "ABCCC";
    const SUMMARY: &'static str = "the paper's cube: n-port crossbars, k+1 levels, h-NIC servers";
    const SYNTAX: &'static str = "abccc:<n>,<k>,<h>";

    fn canonical(&self) -> String {
        format!("{},{},{}", self.n(), self.k(), self.h())
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(Abccc::new(*self)?))
    }

    fn diameter_formula(&self) -> Option<u64> {
        Some(self.diameter())
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        let mut out: Vec<Self> = (2..=10u32)
            .flat_map(|n| (0..=4u32).map(move |k| (n, k)))
            .flat_map(|(n, k)| (2..=4u32).map(move |h| (n, k, h)))
            .filter_map(|(n, k, h)| AbcccParams::new(n, k, h).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect();
        out.sort_by_key(|p| (p.server_count(), p.canonical()));
        out
    }
}

impl FamilyParams for BcccParams {
    const FAMILY: &'static str = "bccc";
    const DISPLAY_NAME: &'static str = "BCCC";
    const SUMMARY: &'static str = "BCube Connected Crossbars — the dual-port predecessor (h = 2)";
    const SYNTAX: &'static str = "bccc:<n>,<k>";

    fn canonical(&self) -> String {
        format!("{},{}", self.n(), self.k())
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(Bccc::new(*self)?))
    }

    fn diameter_formula(&self) -> Option<u64> {
        Some(self.diameter())
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        let mut out: Vec<Self> = (2..=10u32)
            .flat_map(|n| (0..=4u32).map(move |k| (n, k)))
            .filter_map(|(n, k)| BcccParams::new(n, k).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect();
        out.sort_by_key(|p| (p.server_count(), p.canonical()));
        out
    }
}

impl FamilyParams for BCubeParams {
    const FAMILY: &'static str = "bcube";
    const DISPLAY_NAME: &'static str = "BCube";
    const SUMMARY: &'static str = "multi-port server-centric cube (SIGCOMM 2009)";
    const SYNTAX: &'static str = "bcube:<n>,<k>";

    fn canonical(&self) -> String {
        format!("{},{}", self.n(), self.k())
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(BCube::new(*self)?))
    }

    fn diameter_formula(&self) -> Option<u64> {
        Some(self.diameter())
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        let mut out: Vec<Self> = (2..=10u32)
            .flat_map(|n| (0..=3u32).map(move |k| (n, k)))
            .filter_map(|(n, k)| BCubeParams::new(n, k).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect();
        out.sort_by_key(|p| (p.server_count(), p.canonical()));
        out
    }
}

impl FamilyParams for DCellParams {
    const FAMILY: &'static str = "dcell";
    const DISPLAY_NAME: &'static str = "DCell";
    const SUMMARY: &'static str = "recursively-defined server-centric network (SIGCOMM 2008)";
    const SYNTAX: &'static str = "dcell:<n>,<k>";

    fn canonical(&self) -> String {
        format!("{},{}", self.n(), self.k())
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(DCell::new(self.clone())?))
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        let mut out: Vec<Self> = (2..=8u32)
            .flat_map(|n| (0..=2u32).map(move |k| (n, k)))
            .filter_map(|(n, k)| DCellParams::new(n, k).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect();
        out.sort_by_key(|p| (p.server_count(), p.canonical()));
        out
    }
}

impl FamilyParams for FatTreeParams {
    const FAMILY: &'static str = "fattree";
    const DISPLAY_NAME: &'static str = "FatTree";
    const SUMMARY: &'static str = "three-tier folded-Clos switch-centric baseline";
    const SYNTAX: &'static str = "fattree:<p>";

    fn canonical(&self) -> String {
        format!("{}", self.p())
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(FatTree::new(*self)?))
    }

    fn diameter_formula(&self) -> Option<u64> {
        // Switch-only paths: every inter-server route is one server hop.
        Some(1)
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        let mut out: Vec<Self> = (1..=24u32)
            .filter_map(|half| FatTreeParams::new(2 * half).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect();
        out.sort_by_key(|p| (p.server_count(), p.canonical()));
        out
    }
}

impl FamilyParams for HypercubeParams {
    const FAMILY: &'static str = "ghc";
    const DISPLAY_NAME: &'static str = "GHC";
    const SUMMARY: &'static str = "generalized hypercube — the unlimited-port end of the space";
    const SYNTAX: &'static str = "ghc:<n>,<d>";

    fn canonical(&self) -> String {
        format!("{},{}", self.n(), self.d())
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(Hypercube::new(*self)?))
    }

    fn diameter_formula(&self) -> Option<u64> {
        Some(self.diameter())
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        let mut out: Vec<Self> = (2..=6u32)
            .flat_map(|n| (1..=10u32).map(move |d| (n, d)))
            .filter_map(|(n, d)| HypercubeParams::new(n, d).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect();
        out.sort_by_key(|p| (p.server_count(), p.canonical()));
        out
    }
}

/// The geometric switch-count progression shared by the random-graph
/// ladders (Jellyfish, Space Shuffle).
fn random_graph_sizes(min: u32) -> impl Iterator<Item = u32> {
    [
        4u32, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048,
        3072, 4096,
    ]
    .into_iter()
    .filter(move |&v| v >= min)
}

impl FamilyParams for JellyfishParams {
    const FAMILY: &'static str = "jellyfish";
    const DISPLAY_NAME: &'static str = "Jellyfish";
    const SUMMARY: &'static str = "seeded random r-regular switch graph (NSDI 2012)";
    const SYNTAX: &'static str = "jellyfish:v=<v>,r=<r>[,s=<s>][,seed=<seed>]";

    fn canonical(&self) -> String {
        format!(
            "v={},r={},s={},seed={}",
            self.v(),
            self.r(),
            self.s(),
            self.seed()
        )
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(Jellyfish::new(*self)?))
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        // Fixed degree r = 4 (v·r always even), one server per switch.
        random_graph_sizes(6)
            .filter_map(|v| JellyfishParams::new(v, 4, 1, Self::DEFAULT_SEED).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect()
    }
}

impl FamilyParams for SpaceShuffleParams {
    const FAMILY: &'static str = "spaceshuffle";
    const DISPLAY_NAME: &'static str = "SpaceShuffle";
    const SUMMARY: &'static str = "greedy routing over seeded random ring coordinates (ICNP 2014)";
    const SYNTAX: &'static str = "spaceshuffle:v=<v>[,d=<d>][,s=<s>][,seed=<seed>]";

    fn canonical(&self) -> String {
        format!(
            "v={},d={},s={},seed={}",
            self.v(),
            self.d(),
            self.s(),
            self.seed()
        )
    }

    fn servers(&self) -> u64 {
        self.server_count()
    }

    fn build_topology(&self) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
        Ok(Box::new(SpaceShuffle::new(*self)?))
    }

    fn ladder(max_servers: u64) -> Vec<Self> {
        random_graph_sizes(4)
            .filter_map(|v| SpaceShuffleParams::new(v, Self::DEFAULT_D, 1, Self::DEFAULT_SEED).ok())
            .filter(|p| p.server_count() <= max_servers)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

static ABCCC_FAMILY: Family<AbcccParams> = Family::NEW;
static BCCC_FAMILY: Family<BcccParams> = Family::NEW;
static BCUBE_FAMILY: Family<BCubeParams> = Family::NEW;
static DCELL_FAMILY: Family<DCellParams> = Family::NEW;
static FATTREE_FAMILY: Family<FatTreeParams> = Family::NEW;
static GHC_FAMILY: Family<HypercubeParams> = Family::NEW;
static JELLYFISH_FAMILY: Family<JellyfishParams> = Family::NEW;
static SPACESHUFFLE_FAMILY: Family<SpaceShuffleParams> = Family::NEW;

/// Every registered family, in canonical (paper) order. This is the single
/// family list of the workspace — cache, registry, and CLI all walk it.
pub fn families() -> &'static [&'static dyn TopologyFamily] {
    static LIST: [&dyn TopologyFamily; 8] = [
        &ABCCC_FAMILY,
        &BCCC_FAMILY,
        &BCUBE_FAMILY,
        &DCELL_FAMILY,
        &FATTREE_FAMILY,
        &GHC_FAMILY,
        &JELLYFISH_FAMILY,
        &SPACESHUFFLE_FAMILY,
    ];
    &LIST
}

/// Looks up a family by spec id or display name, case-insensitively.
pub fn find(name: &str) -> Option<&'static dyn TopologyFamily> {
    let name = name.trim();
    families().iter().copied().find(|f| {
        f.name().eq_ignore_ascii_case(name) || f.display_name().eq_ignore_ascii_case(name)
    })
}

/// Parses a topology spec — `family:params` (`abccc:4,2,3`) or the label
/// form `ABCCC(4,2,3)` — into the family and *canonical* parameter text.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] for an unknown family or
/// malformed spec, and the family's own error for invalid parameters.
pub fn parse_spec(spec: &str) -> Result<(&'static dyn TopologyFamily, String), NetworkError> {
    let t = spec.trim();
    let (name, body) = if let Some((name, body)) = t.split_once(':') {
        (name.trim(), body.trim())
    } else if let (Some(open), true) = (t.find('('), t.ends_with(')')) {
        (t[..open].trim(), t[open + 1..t.len() - 1].trim())
    } else {
        return Err(NetworkError::InvalidParameter {
            name: "spec",
            reason: format!(
                "expected `family:params`, got `{t}` (families: {})",
                family_ids()
            ),
        });
    };
    let fam = find(name).ok_or_else(|| NetworkError::InvalidParameter {
        name: "family",
        reason: format!("unknown family `{name}` (families: {})", family_ids()),
    })?;
    let canonical = fam.canonicalize(body)?;
    Ok((fam, canonical))
}

/// Builds the topology named by a spec string (see [`parse_spec`]).
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] for unknown/malformed specs
/// and the family's own parse/construction errors.
pub fn build_spec(spec: &str) -> Result<Box<dyn Topology + Send + Sync>, NetworkError> {
    let (fam, params) = parse_spec(spec)?;
    fam.build(&params)
}

fn family_ids() -> String {
    families()
        .iter()
        .map(|f| f.name())
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// Sizing helpers — the equal-server-count / equal-cost arena machinery.
// ---------------------------------------------------------------------------

/// The configuration of `family` whose server count is closest to
/// `target` (ties break toward the smaller network, then canonical text).
/// Returns the canonical parameter text, or `None` if the family has no
/// configuration at all below `4·target`.
pub fn size_for_servers(family: &dyn TopologyFamily, target: u64) -> Option<String> {
    let cap = target.saturating_mul(4).max(32);
    family.ladder(cap).into_iter().min_by_key(|p| {
        let s = family.server_count(p).unwrap_or(u64::MAX);
        (s.abs_diff(target), s, p.clone())
    })
}

/// The largest configuration of `family` (by server count, at most
/// `max_servers`) whose price — as computed by the caller-supplied `price`
/// closure over canonical parameter text — fits within `budget`. Returns
/// the canonical parameter text. Configurations whose price cannot be
/// computed are skipped.
pub fn size_for_budget(
    family: &dyn TopologyFamily,
    max_servers: u64,
    budget: f64,
    price: &mut dyn FnMut(&str) -> Option<f64>,
) -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for p in family.ladder(max_servers) {
        let Some(cost) = price(&p) else { continue };
        if cost <= budget {
            let s = family.server_count(&p).unwrap_or(0);
            if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best = Some((s, p));
            }
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(strip_display_wrapper("BCCC(4,2)", "bccc"), "4,2");
        assert_eq!(strip_display_wrapper(" 4,2 ", "bccc"), "4,2");
        assert_eq!(strip_display_wrapper("GHC(2,3)", "ghc"), "2,3");
        // A mismatched wrapper is left intact (and will fail to parse).
        assert_eq!(strip_display_wrapper("BCube(4,2)", "bccc"), "BCube(4,2)");
        assert_eq!(key_value(" v = 7 ").unwrap(), ("v", "7"));
        assert!(key_value("v").is_err());
        assert_eq!(parse_u32("v", "12").unwrap(), 12);
        assert!(parse_u32("v", "x").is_err());
        assert_eq!(parse_positional("4, 2", &["n", "k"]).unwrap(), vec![4, 2]);
        assert!(parse_positional("4", &["n", "k"]).is_err());
    }

    #[test]
    fn registry_is_complete_and_findable() {
        assert_eq!(families().len(), 8);
        for f in families() {
            assert_eq!(find(f.name()).unwrap().name(), f.name());
            assert_eq!(find(f.display_name()).unwrap().name(), f.name());
        }
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn specs_round_trip_through_canonical_form() {
        for spec in [
            "abccc:4,2,3",
            "bccc:4,2",
            "bcube:4,1",
            "dcell:3,1",
            "fattree:4",
            "ghc:2,3",
            "jellyfish:v=8,r=3,s=1,seed=7",
            "spaceshuffle:v=6,d=2,s=1,seed=7",
        ] {
            let (fam, canon) = parse_spec(spec).unwrap();
            // Canonical text re-canonicalizes to itself.
            assert_eq!(fam.canonicalize(&canon).unwrap(), canon);
            // The label form re-parses to the same family + params.
            let label = fam.label(&canon);
            let (fam2, canon2) = parse_spec(&label).unwrap();
            assert_eq!(fam2.name(), fam.name());
            assert_eq!(canon2, canon);
            // Build matches the closed-form server count and the label.
            let topo = fam.build(&canon).unwrap();
            assert_eq!(
                topo.server_count() as u64,
                fam.server_count(&canon).unwrap()
            );
            assert_eq!(topo.name(), label);
        }
    }

    #[test]
    fn spec_errors_are_labeled() {
        assert!(parse_spec("martian:1,2").is_err());
        assert!(parse_spec("abccc").is_err());
        assert!(parse_spec("abccc:9999,9,9").is_err());
    }

    #[test]
    fn diameter_formulas() {
        let (fam, p) = parse_spec("fattree:4").unwrap();
        assert_eq!(fam.diameter_formula(&p).unwrap(), Some(1));
        let (fam, p) = parse_spec("dcell:3,1").unwrap();
        assert_eq!(fam.diameter_formula(&p).unwrap(), None);
        let (fam, p) = parse_spec("jellyfish:v=8,r=3").unwrap();
        assert_eq!(fam.diameter_formula(&p).unwrap(), None);
    }

    #[test]
    fn ladders_ascend_and_respect_cap() {
        for f in families() {
            let ladder = f.ladder(600);
            assert!(!ladder.is_empty(), "{} ladder empty", f.name());
            let mut prev = 0;
            for p in &ladder {
                let s = f.server_count(p).unwrap();
                assert!(s <= 600);
                assert!(s >= prev, "{} ladder not ascending", f.name());
                prev = s;
            }
        }
    }

    #[test]
    fn sizing_matches_servers() {
        for f in families() {
            let p = size_for_servers(*f, 60).unwrap();
            let s = f.server_count(&p).unwrap();
            assert!(
                (16..=240).contains(&s),
                "{}: {} servers for target 60",
                f.name(),
                s
            );
        }
        // Exact where the family can hit it exactly.
        let jf = find("jellyfish").unwrap();
        let p = size_for_servers(jf, 64).unwrap();
        assert_eq!(jf.server_count(&p).unwrap(), 64);
    }

    #[test]
    fn sizing_respects_budget() {
        let jf = find("jellyfish").unwrap();
        // Price = one dollar per server: budget 100 buys at most 100 servers.
        let mut price = |p: &str| Some(jf.server_count(p).unwrap() as f64);
        let picked = size_for_budget(jf, 10_000, 100.0, &mut price).unwrap();
        let s = jf.server_count(&picked).unwrap();
        assert!(s <= 100, "{s} servers over budget");
        assert_eq!(s, 96); // largest ladder step under 100
        assert!(size_for_budget(jf, 10_000, 0.5, &mut price).is_none());
    }
}
