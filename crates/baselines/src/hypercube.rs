//! Generalized hypercube `GHC(n, d)` (Bhuyan & Agrawal) — the classic
//! direct-network comparison point.
//!
//! `n^d` servers, no switches: two servers are cabled iff their base-`n`
//! addresses differ in exactly one digit, giving degree `d(n−1)`. Superb
//! diameter (`d`) and bisection, but the per-server port count is far
//! beyond commodity NICs — the cost axis ABCCC's comparison tables
//! highlight.

use netgraph::{Network, NetworkError, NodeId, Route, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a generalized hypercube `GHC(n, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HypercubeParams {
    n: u32,
    d: u32,
}

impl HypercubeParams {
    /// Creates and validates parameters (`n ≥ 2`, `1 ≤ d ≤ 20`).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] on out-of-range values.
    pub fn new(n: u32, d: u32) -> Result<Self, NetworkError> {
        if !(2..=1024).contains(&n) {
            return Err(NetworkError::InvalidParameter {
                name: "n",
                reason: format!("digit base must be in 2..=1024, got {n}"),
            });
        }
        if d == 0 || d > 20 {
            return Err(NetworkError::InvalidParameter {
                name: "d",
                reason: format!("dimension must be in 1..=20, got {d}"),
            });
        }
        Ok(HypercubeParams { n, d })
    }

    /// Digit base `n` (binary hypercube: `n = 2`).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Dimension `d`.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Servers: `n^d`.
    pub fn server_count(&self) -> u64 {
        u64::from(self.n).pow(self.d)
    }

    /// Cables: `n^d · d(n−1) / 2`.
    pub fn wire_count(&self) -> u64 {
        self.server_count() * u64::from(self.d) * u64::from(self.n - 1) / 2
    }

    /// NIC ports per server: `d(n−1)`.
    pub fn ports_per_server(&self) -> u32 {
        self.d * (self.n - 1)
    }

    /// Diameter: `d`.
    pub fn diameter(&self) -> u64 {
        u64::from(self.d)
    }

    /// Bisection width in links for even `n`: `n^(d-1) · n²/4 = N·n/4`.
    pub fn bisection_width(&self) -> Option<u64> {
        self.n
            .is_multiple_of(2)
            .then(|| self.server_count() * u64::from(self.n) / 4)
    }

    fn digit(&self, label: u64, i: u32) -> u32 {
        ((label / u64::from(self.n).pow(i)) % u64::from(self.n)) as u32
    }

    fn with_digit(&self, label: u64, i: u32, d: u32) -> u64 {
        let pw = u64::from(self.n).pow(i) as i64;
        (label as i64 + (i64::from(d) - i64::from(self.digit(label, i))) * pw) as u64
    }
}

impl fmt::Display for HypercubeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GHC({},{})", self.n, self.d)
    }
}

impl std::str::FromStr for HypercubeParams {
    type Err = NetworkError;

    /// Parses the bare pair `"2,3"` or the [`fmt::Display`] form
    /// `"GHC(2,3)"`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let v = crate::family::parse_positional(
            crate::family::strip_display_wrapper(text, "ghc"),
            &["n", "d"],
        )?;
        HypercubeParams::new(v[0], v[1])
    }
}

/// A materialized generalized hypercube with e-cube (dimension-ordered)
/// routing.
#[derive(Debug, Clone)]
pub struct Hypercube {
    params: HypercubeParams,
    net: Network,
}

impl Hypercube {
    /// Builds the network with unit link capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: HypercubeParams) -> Result<Self, NetworkError> {
        if params.server_count() > abccc::MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(params.server_count()),
                limit: u128::from(abccc::MAX_MATERIALIZED_NODES),
            });
        }
        let mut net =
            Network::with_capacity(params.server_count() as usize, params.wire_count() as usize);
        for _ in 0..params.server_count() {
            net.add_server();
        }
        for label in 0..params.server_count() {
            for i in 0..params.d {
                let di = params.digit(label, i);
                for v in (di + 1)..params.n {
                    net.add_link(
                        NodeId(label as u32),
                        NodeId(params.with_digit(label, i, v) as u32),
                        1.0,
                    );
                }
            }
        }
        debug_assert_eq!(net.link_count() as u64, params.wire_count());
        Ok(Hypercube { params, net })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &HypercubeParams {
        &self.params
    }
}

impl Topology for Hypercube {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        let p = &self.params;
        if u64::from(src.0) >= p.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= p.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        let mut nodes = vec![src];
        let mut cur = u64::from(src.0);
        let dstv = u64::from(dst.0);
        for i in 0..p.d {
            let want = p.digit(dstv, i);
            if p.digit(cur, i) != want {
                cur = p.with_digit(cur, i, want);
                nodes.push(NodeId(cur as u32));
            }
        }
        Ok(Route::new(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_cube() {
        let p = HypercubeParams::new(2, 3).unwrap();
        assert_eq!(p.server_count(), 8);
        assert_eq!(p.wire_count(), 12);
        assert_eq!(p.ports_per_server(), 3);
        let t = Hypercube::new(p).unwrap();
        assert_eq!(t.network().link_count(), 12);
        assert_eq!(
            netgraph::bfs::server_diameter(t.network()),
            Some(p.diameter() as u32)
        );
    }

    #[test]
    fn generalized_degree() {
        let p = HypercubeParams::new(4, 2).unwrap();
        let t = Hypercube::new(p).unwrap();
        for s in t.network().server_ids() {
            assert_eq!(t.network().degree(s) as u32, p.ports_per_server());
        }
    }

    #[test]
    fn ecube_routing_is_shortest() {
        let p = HypercubeParams::new(3, 3).unwrap();
        let t = Hypercube::new(p).unwrap();
        let src = NodeId(0);
        let bfs = netgraph::bfs::server_hop_distances(t.network(), src, None);
        for d in 0..p.server_count() {
            let dst = NodeId(d as u32);
            let r = t.route(src, dst).unwrap();
            r.validate(t.network(), None).unwrap();
            assert_eq!(r.server_hops(t.network()) as u32, bfs[dst.index()]);
        }
    }

    #[test]
    fn bisection_formula_exact_small() {
        let p = HypercubeParams::new(2, 3).unwrap();
        let t = Hypercube::new(p).unwrap();
        let side: Vec<bool> = (0..t.network().node_count())
            .map(|i| p.digit(i as u64, p.d() - 1) == 0)
            .collect();
        assert_eq!(
            netgraph::maxflow::bisection_width(t.network(), &side),
            p.bisection_width().unwrap()
        );
    }
}
