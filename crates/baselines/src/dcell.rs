//! DCell (Guo et al., SIGCOMM 2008) — the recursively-defined
//! server-centric baseline.
//!
//! `DCell_0` is `n` servers on one `n`-port switch; `DCell_l` is
//! `t_{l-1} + 1` copies of `DCell_{l-1}` with one direct server–server
//! cable between every pair of copies (sub-DCells `i < j` are joined by the
//! cable between local server `j−1` of copy `i` and local server `i` of
//! copy `j`). Servers use `k + 1` ports. Size grows doubly exponentially
//! (`t_l = t_{l-1}(t_{l-1}+1)`), diameter is bounded by `2^(k+1) − 1`, and
//! the native `DCellRouting` is near-shortest (not exactly shortest).

use netgraph::{Network, NetworkError, NodeId, Route, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a `DCell(n, k)` network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DCellParams {
    n: u32,
    k: u32,
    /// `t[l]` = servers in a `DCell_l`, for `l = 0..=k`.
    t: Vec<u64>,
}

impl DCellParams {
    /// Creates and validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] if `n < 2`, or if the
    /// doubly-exponential size exceeds `u32` ids (k is effectively ≤ 3).
    pub fn new(n: u32, k: u32) -> Result<Self, NetworkError> {
        if !(2..=1024).contains(&n) {
            return Err(NetworkError::InvalidParameter {
                name: "n",
                reason: format!("switch radix must be in 2..=1024, got {n}"),
            });
        }
        let mut t = vec![u64::from(n)];
        for _ in 0..k {
            let prev = *t.last().expect("non-empty");
            let next =
                prev.checked_mul(prev + 1)
                    .ok_or_else(|| NetworkError::InvalidParameter {
                        name: "k",
                        reason: format!("DCell({n},{k}) size overflows u64"),
                    })?;
            if next > u64::from(u32::MAX) {
                return Err(NetworkError::InvalidParameter {
                    name: "k",
                    reason: format!("DCell({n},{k}) has {next} servers — beyond u32 node ids"),
                });
            }
            t.push(next);
        }
        Ok(DCellParams { n, k, t })
    }

    /// Switch radix `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Recursion depth `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Servers in a `DCell_l` (`t_l`).
    pub fn t(&self, l: u32) -> u64 {
        self.t[l as usize]
    }

    /// Total servers `t_k`.
    pub fn server_count(&self) -> u64 {
        *self.t.last().expect("non-empty")
    }

    /// Switches: one per `DCell_0`, `t_k / n`.
    pub fn switch_count(&self) -> u64 {
        self.server_count() / u64::from(self.n)
    }

    /// Cables: `t_k` server–switch cables plus one direct cable per pair of
    /// sub-DCells at every level: `Σ_l (t_k / t_l) · C(t_{l-1}+1, 2)`.
    pub fn wire_count(&self) -> u64 {
        let mut wires = self.server_count(); // DCell_0 switch cables
        for l in 1..=self.k {
            let instances = self.server_count() / self.t(l);
            let g = self.t(l - 1) + 1;
            wires += instances * g * (g - 1) / 2;
        }
        wires
    }

    /// NIC ports per server: `k + 1`.
    pub fn ports_per_server(&self) -> u32 {
        self.k + 1
    }

    /// Upper bound on the diameter in server hops: `2^(k+1) − 1`.
    pub fn diameter_bound(&self) -> u64 {
        (1u64 << (self.k + 1)) - 1
    }
}

impl fmt::Display for DCellParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DCell({},{})", self.n, self.k)
    }
}

impl std::str::FromStr for DCellParams {
    type Err = NetworkError;

    /// Parses the bare pair `"3,1"` or the [`fmt::Display`] form
    /// `"DCell(3,1)"`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let v = crate::family::parse_positional(
            crate::family::strip_display_wrapper(text, "dcell"),
            &["n", "k"],
        )?;
        DCellParams::new(v[0], v[1])
    }
}

/// A materialized `DCell(n, k)` network with native `DCellRouting`.
#[derive(Debug, Clone)]
pub struct DCell {
    params: DCellParams,
    net: Network,
}

impl DCell {
    /// Builds the network with unit link capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: DCellParams) -> Result<Self, NetworkError> {
        let nodes = params.server_count() + params.switch_count();
        if nodes > abccc::MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(nodes),
                limit: u128::from(abccc::MAX_MATERIALIZED_NODES),
            });
        }
        let mut net = Network::with_capacity(nodes as usize, params.wire_count() as usize);
        for _ in 0..params.server_count() {
            net.add_server();
        }
        for _ in 0..params.switch_count() {
            net.add_switch();
        }
        // DCell_0 stars.
        for uid in 0..params.server_count() {
            let sw = NodeId((params.server_count() + uid / u64::from(params.n)) as u32);
            net.add_link(NodeId(uid as u32), sw, 1.0);
        }
        // Level-l pair cables. DCell_l instances occupy contiguous uid
        // blocks of size t_l.
        for l in 1..=params.k {
            let tl = params.t(l);
            let tp = params.t(l - 1);
            let g = tp + 1;
            for base in (0..params.server_count()).step_by(tl as usize) {
                for i in 0..g {
                    for j in (i + 1)..g {
                        let a = base + i * tp + (j - 1);
                        let b = base + j * tp + i;
                        net.add_link(NodeId(a as u32), NodeId(b as u32), 1.0);
                    }
                }
            }
        }
        debug_assert_eq!(net.link_count() as u64, params.wire_count());
        Ok(DCell { params, net })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &DCellParams {
        &self.params
    }

    /// The cable joining sub-DCells `i` and `j` (local indices) of the
    /// `DCell_l` whose uid block starts at `base`, as `(server_in_i,
    /// server_in_j)` global uids.
    fn connecting_pair(&self, l: u32, base: u64, i: u64, j: u64) -> (u64, u64) {
        debug_assert!(i != j);
        let tp = self.params.t(l - 1);
        if i < j {
            (base + i * tp + (j - 1), base + j * tp + i)
        } else {
            let (b, a) = self.connecting_pair(l, base, j, i);
            (a, b)
        }
    }

    fn route_rec(&self, a: u64, b: u64, nodes: &mut Vec<NodeId>) {
        if a == b {
            return;
        }
        // Highest level whose sub-index differs.
        let mut level = 0;
        for l in (1..=self.params.k).rev() {
            let tl = self.params.t(l);
            if a / tl == b / tl
                && (a % tl) / self.params.t(l - 1) != (b % tl) / self.params.t(l - 1)
            {
                level = l;
                break;
            }
        }
        if level == 0 {
            // Same DCell_0: one switch hop.
            debug_assert_eq!(a / u64::from(self.params.n), b / u64::from(self.params.n));
            let sw = self.params.server_count() + a / u64::from(self.params.n);
            nodes.push(NodeId(sw as u32));
            nodes.push(NodeId(b as u32));
            return;
        }
        let tl = self.params.t(level);
        let tp = self.params.t(level - 1);
        let base = (a / tl) * tl;
        let i = (a % tl) / tp;
        let j = (b % tl) / tp;
        let (n1, n2) = self.connecting_pair(level, base, i, j);
        self.route_rec(a, n1, nodes);
        nodes.push(NodeId(n2 as u32));
        self.route_rec(n2, b, nodes);
    }
}

impl Topology for DCell {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        if u64::from(src.0) >= self.params.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= self.params.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        let mut nodes = vec![src];
        self.route_rec(u64::from(src.0), u64::from(dst.0), &mut nodes);
        Ok(Route::new(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let p = DCellParams::new(4, 1).unwrap();
        assert_eq!(p.server_count(), 20);
        assert_eq!(p.switch_count(), 5);
        // 20 star cables + C(5,2) = 10 pair cables
        assert_eq!(p.wire_count(), 30);
        let p2 = DCellParams::new(2, 2).unwrap();
        assert_eq!(p2.server_count(), 42);
    }

    #[test]
    fn construction_matches_formulas() {
        for (n, k) in [(2, 1), (3, 1), (4, 1), (2, 2), (3, 2)] {
            let p = DCellParams::new(n, k).unwrap();
            let t = DCell::new(p.clone()).unwrap();
            assert_eq!(t.network().server_count() as u64, p.server_count(), "{p}");
            assert_eq!(t.network().link_count() as u64, p.wire_count(), "{p}");
            // Every server uses exactly k+1 ports.
            for s in t.network().server_ids() {
                assert_eq!(t.network().degree(s) as u32, p.ports_per_server(), "{p}");
            }
            assert!(netgraph::connectivity::servers_connected(t.network(), None));
        }
    }

    #[test]
    fn routing_is_valid_and_bounded() {
        for (n, k) in [(2, 1), (4, 1), (2, 2), (3, 2)] {
            let p = DCellParams::new(n, k).unwrap();
            let t = DCell::new(p.clone()).unwrap();
            let count = p.server_count();
            for s in 0..count {
                for d in (0..count).step_by(3) {
                    let r = t.route(NodeId(s as u32), NodeId(d as u32)).unwrap();
                    r.validate(t.network(), None)
                        .unwrap_or_else(|e| panic!("{p} {s}->{d}: {e}"));
                    assert!(
                        (r.server_hops(t.network()) as u64) <= p.diameter_bound(),
                        "{p}: {s}->{d} exceeded diameter bound"
                    );
                }
            }
        }
    }

    #[test]
    fn bfs_diameter_within_bound() {
        let p = DCellParams::new(3, 1).unwrap();
        let t = DCell::new(p.clone()).unwrap();
        let d = netgraph::bfs::server_diameter(t.network()).unwrap();
        assert!(u64::from(d) <= p.diameter_bound());
        // DCell(3,1): known diameter 3 ≤ bound 3.
        assert_eq!(d, 3);
    }

    #[test]
    fn routing_near_shortest() {
        // DCellRouting is not exactly shortest, but must stay close on
        // small instances (≤ +2 hops here).
        let p = DCellParams::new(3, 2).unwrap();
        let t = DCell::new(p.clone()).unwrap();
        let src = NodeId(0);
        let bfs = netgraph::bfs::server_hop_distances(t.network(), src, None);
        for d in (0..p.server_count()).step_by(7) {
            let dst = NodeId(d as u32);
            let r = t.route(src, dst).unwrap();
            let got = r.server_hops(t.network()) as u32;
            assert!(
                got <= bfs[dst.index()] + 2,
                "{d}: {got} vs {}",
                bfs[dst.index()]
            );
        }
    }

    #[test]
    fn oversized_rejected() {
        assert!(DCellParams::new(6, 4).is_err()); // ~1e13 servers
        assert!(DCellParams::new(6, 3).is_ok()); // 3.26e6 servers — ids still fit
    }
}
