//! Space Shuffle / S2 (Yu & Qian, ICNP 2014) — greedy routing over random
//! ring coordinates.
//!
//! `SpaceShuffle(v,d,s,seed)`: `v` switches are placed on `d` independent
//! seeded random rings (one circular permutation per "space"); a switch is
//! physically cabled to its two ring neighbors in every space (deduplicated
//! across spaces, so switch degree is at most `2d`) and hosts `s` servers.
//!
//! Routing is greedy: forward to the physical neighbor that minimizes the
//! *minimum circular distance to the destination across all spaces*,
//! accepting only strict decreases. Delivery is guaranteed fault-free: in
//! the space achieving the minimum, a ring neighbor always decreases that
//! circular distance by one, so a strictly improving neighbor exists at
//! every step and the greedy switch-hop count is bounded by the source's
//! minimum-space ring distance. Under faults the same greedy walk skips
//! dead elements and falls back to BFS on the surviving graph when stuck.

use netgraph::{FaultMask, Network, NetworkError, NodeId, Route, RouteError, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Parameters of a `SpaceShuffle(v,d,s,seed)` network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpaceShuffleParams {
    v: u32,
    d: u32,
    s: u32,
    seed: u64,
}

impl SpaceShuffleParams {
    /// Default space count when a spec omits `d`.
    pub const DEFAULT_D: u32 = 2;
    /// Default servers per switch when a spec omits `s`.
    pub const DEFAULT_S: u32 = 1;
    /// Default construction seed when a spec omits `seed`.
    pub const DEFAULT_SEED: u64 = 7;

    /// Creates and validates parameters: `v ≥ 3` switches, `1 ≤ d ≤ 64`
    /// spaces, `s ≥ 1` servers per switch.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] on any violation.
    pub fn new(v: u32, d: u32, s: u32, seed: u64) -> Result<Self, NetworkError> {
        if !(3..=1_000_000).contains(&v) {
            return Err(NetworkError::InvalidParameter {
                name: "v",
                reason: format!("switch count must be in 3..=1000000, got {v}"),
            });
        }
        if !(1..=64).contains(&d) {
            return Err(NetworkError::InvalidParameter {
                name: "d",
                reason: format!("space count must be in 1..=64, got {d}"),
            });
        }
        if !(1..=256).contains(&s) {
            return Err(NetworkError::InvalidParameter {
                name: "s",
                reason: format!("servers per switch must be in 1..=256, got {s}"),
            });
        }
        Ok(SpaceShuffleParams { v, d, s, seed })
    }

    /// Number of switches `v`.
    pub fn v(&self) -> u32 {
        self.v
    }

    /// Number of spaces (rings) `d`.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Servers per switch `s`.
    pub fn s(&self) -> u32 {
        self.s
    }

    /// Construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Servers: `v·s`.
    pub fn server_count(&self) -> u64 {
        u64::from(self.v) * u64::from(self.s)
    }

    /// Switches: `v`.
    pub fn switch_count(&self) -> u64 {
        u64::from(self.v)
    }

    /// Maximum switch radix `2d + s` (ring edges can coincide across
    /// spaces, so the realized inter-switch degree may be lower).
    pub fn max_switch_radix(&self) -> u32 {
        2 * self.d + self.s
    }

    fn switch_node(&self, sw: u32) -> NodeId {
        NodeId(self.server_count() as u32 + sw)
    }

    fn host_switch(&self, server: NodeId) -> NodeId {
        self.switch_node(server.0 / self.s)
    }
}

impl fmt::Display for SpaceShuffleParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpaceShuffle(v={},d={},s={},seed={})",
            self.v, self.d, self.s, self.seed
        )
    }
}

impl FromStr for SpaceShuffleParams {
    type Err = NetworkError;

    /// Parses `v=64,d=2,s=1,seed=7` (any key order; `d`, `s`, `seed`
    /// optional) or the [`fmt::Display`] form `SpaceShuffle(v=64,...)`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let body = crate::family::strip_display_wrapper(text, "spaceshuffle");
        let mut v = None;
        let (mut d, mut s, mut seed) = (Self::DEFAULT_D, Self::DEFAULT_S, Self::DEFAULT_SEED);
        for field in body.split(',') {
            let (key, value) = crate::family::key_value(field)?;
            match key {
                "v" => v = Some(crate::family::parse_u32("v", value)?),
                "d" => d = crate::family::parse_u32("d", value)?,
                "s" => s = crate::family::parse_u32("s", value)?,
                "seed" => seed = crate::family::parse_u64("seed", value)?,
                other => {
                    return Err(NetworkError::InvalidParameter {
                        name: "spec",
                        reason: format!("unknown spaceshuffle key `{other}` (want v,d,s,seed)"),
                    })
                }
            }
        }
        let v = v.ok_or(NetworkError::InvalidParameter {
            name: "v",
            reason: "spaceshuffle spec requires v=<switches>".into(),
        })?;
        SpaceShuffleParams::new(v, d, s, seed)
    }
}

/// A materialized `SpaceShuffle(v,d,s,seed)` network with greedy
/// multi-space routing.
#[derive(Debug, Clone)]
pub struct SpaceShuffle {
    params: SpaceShuffleParams,
    net: Network,
    /// `pos[space][switch]` — the switch's position on that space's ring.
    pos: Vec<Vec<u32>>,
}

impl SpaceShuffle {
    /// Builds the seeded network with unit link capacity. Deterministic:
    /// the same parameters always produce an identical [`Network`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: SpaceShuffleParams) -> Result<Self, NetworkError> {
        let nodes = params.server_count() + params.switch_count();
        if nodes > abccc::MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(nodes),
                limit: u128::from(abccc::MAX_MATERIALIZED_NODES),
            });
        }
        let v = params.v;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut pos = Vec::with_capacity(params.d as usize);
        let mut edges = std::collections::BTreeSet::new();
        for _ in 0..params.d {
            let mut ring: Vec<u32> = (0..v).collect();
            ring.shuffle(&mut rng);
            let mut positions = vec![0u32; v as usize];
            for (p, &sw) in ring.iter().enumerate() {
                positions[sw as usize] = p as u32;
            }
            for i in 0..v as usize {
                let (a, b) = (ring[i], ring[(i + 1) % v as usize]);
                edges.insert(if a < b { (a, b) } else { (b, a) });
            }
            pos.push(positions);
        }

        let wires = params.server_count() as usize + edges.len();
        let mut net = Network::with_capacity(nodes as usize, wires);
        for _ in 0..params.server_count() {
            net.add_server();
        }
        for _ in 0..params.switch_count() {
            net.add_switch();
        }
        for srv in 0..params.server_count() as u32 {
            net.add_link(NodeId(srv), params.host_switch(NodeId(srv)), 1.0);
        }
        for &(a, b) in &edges {
            net.add_link(params.switch_node(a), params.switch_node(b), 1.0);
        }
        Ok(SpaceShuffle { params, net, pos })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &SpaceShuffleParams {
        &self.params
    }

    /// Circular distance between two switches in one space.
    fn circular(&self, space: usize, a: u32, b: u32) -> u32 {
        let (pa, pb) = (self.pos[space][a as usize], self.pos[space][b as usize]);
        let lin = pa.abs_diff(pb);
        lin.min(self.params.v - lin)
    }

    /// The routing metric: minimum circular distance to `dst` over all
    /// spaces ("minimum multi-space distance" in the S2 paper).
    pub fn min_space_distance(&self, a_switch: u32, dst_switch: u32) -> u32 {
        (0..self.pos.len())
            .map(|sp| self.circular(sp, a_switch, dst_switch))
            .min()
            .expect("d >= 1")
    }

    fn switch_index(&self, node: NodeId) -> u32 {
        node.0 - self.params.server_count() as u32
    }

    fn check_server(&self, n: NodeId) -> Result<(), RouteError> {
        if u64::from(n.0) >= self.params.server_count() {
            Err(RouteError::NotAServer(n))
        } else {
            Ok(())
        }
    }

    /// Greedy strictly-decreasing walk over switches. Fault-free it always
    /// delivers; with a mask it may get stuck, in which case the caller
    /// falls back to BFS.
    fn greedy_switch_walk(
        &self,
        from: NodeId,
        dst_switch: u32,
        mask: Option<&FaultMask>,
    ) -> Option<Vec<NodeId>> {
        let mut nodes = vec![from];
        let mut cur = from;
        let mut cur_md = self.min_space_distance(self.switch_index(cur), dst_switch);
        while cur_md > 0 {
            let mut best: Option<(u32, NodeId)> = None;
            for &(n, l) in self.net.neighbors(cur) {
                if !self.net.is_server(n) && mask.is_none_or(|m| m.node_alive(n) && m.link_alive(l))
                {
                    let md = self.min_space_distance(self.switch_index(n), dst_switch);
                    // Strict improvement only; ties on the metric broken by
                    // the lower node id for determinism.
                    if md < cur_md && best.is_none_or(|(bmd, bn)| md < bmd || (md == bmd && n < bn))
                    {
                        best = Some((md, n));
                    }
                }
            }
            let (md, next) = best?;
            cur = next;
            cur_md = md;
            nodes.push(cur);
        }
        Some(nodes)
    }

    fn greedy_route(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<Route, RouteError> {
        if src == dst {
            return Ok(Route::new(vec![src]));
        }
        let (src_sw, dst_sw) = (self.params.host_switch(src), self.params.host_switch(dst));
        let dst_idx = self.switch_index(dst_sw);
        let alive = |n: NodeId, l| match mask {
            Some(m) => m.node_alive(n) && m.link_alive(l),
            None => true,
        };
        let first = self.net.find_link(src, src_sw).expect("host link");
        let last = self.net.find_link(dst_sw, dst).expect("host link");
        if alive(src_sw, first) && alive(dst_sw, last) {
            if let Some(mut nodes) = self.greedy_switch_walk(src_sw, dst_idx, mask) {
                nodes.insert(0, src);
                nodes.push(dst);
                return Ok(Route::new(nodes));
            }
        }
        // Greedy got stuck (possible only under faults): omniscient BFS on
        // the surviving graph.
        netgraph::bfs::link_shortest_path(&self.net, src, dst, mask)
            .map(Route::new)
            .ok_or(RouteError::Unreachable { src, dst })
    }
}

impl Topology for SpaceShuffle {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        self.check_server(src)?;
        self.check_server(dst)?;
        self.greedy_route(src, dst, None)
    }

    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: &FaultMask,
    ) -> Result<Route, RouteError> {
        self.check_server(src)?;
        self.check_server(dst)?;
        if !mask.node_alive(src) || !mask.node_alive(dst) {
            return Err(RouteError::Unreachable { src, dst });
        }
        self.greedy_route(src, dst, Some(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SpaceShuffleParams::new(2, 2, 1, 0).is_err());
        assert!(SpaceShuffleParams::new(8, 0, 1, 0).is_err());
        assert!(SpaceShuffleParams::new(8, 2, 0, 0).is_err());
        assert!(SpaceShuffleParams::new(8, 2, 1, 0).is_ok());
    }

    #[test]
    fn spec_roundtrip() {
        let p: SpaceShuffleParams = "v=16,d=3,s=2,seed=9".parse().unwrap();
        assert_eq!(p, SpaceShuffleParams::new(16, 3, 2, 9).unwrap());
        let q: SpaceShuffleParams = "v=16".parse().unwrap();
        assert_eq!(q, SpaceShuffleParams::new(16, 2, 1, 7).unwrap());
        let back: SpaceShuffleParams = p.to_string().parse().unwrap();
        assert_eq!(back, p);
        assert!("d=2".parse::<SpaceShuffleParams>().is_err());
    }

    #[test]
    fn counts_and_connectivity() {
        for seed in 0..8 {
            let p = SpaceShuffleParams::new(15, 2, 2, seed).unwrap();
            let t = SpaceShuffle::new(p).unwrap();
            assert_eq!(t.network().server_count() as u64, p.server_count());
            assert_eq!(t.network().switch_count() as u64, p.switch_count());
            for sw in t.network().switch_ids() {
                assert!(t.network().degree(sw) as u32 <= p.max_switch_radix());
            }
            assert!(netgraph::connectivity::servers_connected(t.network(), None));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = SpaceShuffleParams::new(12, 2, 1, 5).unwrap();
        let (a, b) = (SpaceShuffle::new(p).unwrap(), SpaceShuffle::new(p).unwrap());
        assert_eq!(a.network().links(), b.network().links());
    }

    #[test]
    fn greedy_delivers_all_pairs_within_bound() {
        let p = SpaceShuffleParams::new(14, 2, 2, 3).unwrap();
        let t = SpaceShuffle::new(p).unwrap();
        let n = p.server_count() as u32;
        for s in 0..n {
            for d in 0..n {
                let r = t.route(NodeId(s), NodeId(d)).unwrap();
                r.validate(t.network(), None).unwrap();
                if s == d {
                    continue;
                }
                // Greedy switch hops are bounded by the min-space ring
                // distance between the host switches.
                let (ssw, dsw) = (
                    t.switch_index(t.params.host_switch(NodeId(s))),
                    t.switch_index(t.params.host_switch(NodeId(d))),
                );
                let bound = t.min_space_distance(ssw, dsw) as usize + 2;
                assert!(
                    r.link_hops() <= bound,
                    "greedy {} hops exceeds bound {bound}",
                    r.link_hops()
                );
            }
        }
    }

    #[test]
    fn route_avoiding_detours_or_gives_up() {
        let p = SpaceShuffleParams::new(12, 2, 1, 1).unwrap();
        let t = SpaceShuffle::new(p).unwrap();
        let primary = t.route(NodeId(0), NodeId(7)).unwrap();
        let mut mask = FaultMask::new(t.network());
        for &n in &primary.nodes()[1..primary.nodes().len() - 1] {
            if !t.network().is_server(n)
                && n != t.params.host_switch(NodeId(0))
                && n != t.params.host_switch(NodeId(7))
            {
                mask.fail_node(n);
            }
        }
        match t.route_avoiding(NodeId(0), NodeId(7), &mask) {
            Ok(r) => r.validate(t.network(), Some(&mask)).unwrap(),
            Err(RouteError::Unreachable { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
