//! An independent, from-scratch BCCC constructor used as a cross-check.
//!
//! The main [`crate::Bccc`] type delegates to `abccc` (BCCC ≡ ABCCC with
//! `h = 2`), which keeps the two families consistent *by construction* —
//! but that means a bug in the shared code would go unnoticed. This module
//! rebuilds `BCCC(n, k)` through a deliberately different procedure
//! (switch-centric, iterating switches and computing their member servers,
//! instead of server-centric port wiring) and the test suite asserts the
//! two constructions produce identical networks. An error in either
//! reading of the reconstruction would surface as a mismatch here.

use netgraph::{Network, NetworkError, NodeId};

/// Builds `BCCC(n, k)` switch-by-switch:
/// servers `(x, j)` with `x ∈ [0, n^(k+1))`, `j ∈ [0, k]`,
/// id `x·(k+1) + j`; for every cube label one crossbar joining its `k + 1`
/// servers; for every level `i` and `(k)`-digit rest one `n`-port switch
/// joining the position-`i` servers of the `n` labels completing the rest.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] for out-of-range parameters
/// (same domain as [`crate::BcccParams`]).
pub fn build_bccc_direct(n: u32, k: u32) -> Result<Network, NetworkError> {
    if !(2..=1024).contains(&n) {
        return Err(NetworkError::InvalidParameter {
            name: "n",
            reason: format!("switch radix must be in 2..=1024, got {n}"),
        });
    }
    if k > 19 {
        return Err(NetworkError::InvalidParameter {
            name: "k",
            reason: format!("order must be at most 19, got {k}"),
        });
    }
    let n64 = u64::from(n);
    let groups = n64.pow(k + 1);
    let m = u64::from(k) + 1;
    let servers = groups * m;

    let mut net = Network::with_capacity(
        (servers + groups + m * n64.pow(k)) as usize,
        (servers + m * groups) as usize,
    );
    for _ in 0..servers {
        net.add_server();
    }
    // Crossbars first (matching the abccc id layout), then level switches.
    let mut crossbars = Vec::with_capacity(groups as usize);
    for _ in 0..groups {
        crossbars.push(net.add_switch());
    }
    // Crossbar membership: the m consecutive servers of each label.
    for (x, &cb) in crossbars.iter().enumerate() {
        for j in 0..m {
            net.add_link(NodeId((x as u64 * m + j) as u32), cb, 1.0);
        }
    }
    // Level switches: iterate (level, rest) and enumerate members by
    // *digit-string assembly* (different arithmetic than CubeLabel).
    for level in 0..=k {
        for rest in 0..n64.pow(k) {
            let sw = net.add_switch();
            // Expand `rest` into k digits, then splice digit d at `level`.
            let mut rest_digits = Vec::with_capacity(k as usize);
            let mut acc = rest;
            for _ in 0..k {
                rest_digits.push(acc % n64);
                acc /= n64;
            }
            for d in 0..n64 {
                // Assemble the full digit string least-significant first.
                let mut digits = Vec::with_capacity(k as usize + 1);
                let mut it = rest_digits.iter();
                for pos in 0..=k {
                    if pos == level {
                        digits.push(d);
                    } else {
                        digits.push(*it.next().expect("k rest digits"));
                    }
                }
                // Horner evaluation, most-significant first.
                let label = digits.iter().rev().fold(0u64, |a, &dg| a * n64 + dg);
                // In BCCC position j owns level j.
                let server = NodeId((label * m + u64::from(level)) as u32);
                net.add_link(server, sw, 1.0);
            }
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bccc, BcccParams};
    use netgraph::Topology;

    #[test]
    fn independent_construction_matches_the_abccc_degeneration() {
        for (n, k) in [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2), (2, 3)] {
            let direct = build_bccc_direct(n, k).unwrap();
            let via_abccc = Bccc::new(BcccParams::new(n, k).unwrap()).unwrap();
            let reference = via_abccc.network();
            assert_eq!(
                direct.server_count(),
                reference.server_count(),
                "BCCC({n},{k})"
            );
            assert_eq!(
                direct.switch_count(),
                reference.switch_count(),
                "BCCC({n},{k})"
            );
            assert_eq!(direct.link_count(), reference.link_count(), "BCCC({n},{k})");
            // Same id layout ⇒ identical adjacency, link for link.
            for link in direct.links() {
                assert!(
                    reference.find_link(link.a, link.b).is_some(),
                    "BCCC({n},{k}): link {} – {} missing from the abccc construction",
                    link.a,
                    link.b
                );
            }
            for node in direct.node_ids() {
                assert_eq!(direct.kind(node), reference.kind(node), "BCCC({n},{k})");
                assert_eq!(direct.degree(node), reference.degree(node), "BCCC({n},{k})");
            }
        }
    }

    #[test]
    fn parameter_validation_matches() {
        assert!(build_bccc_direct(1, 1).is_err());
        assert!(build_bccc_direct(2, 20).is_err());
        assert!(build_bccc_direct(2, 0).is_ok());
    }
}
