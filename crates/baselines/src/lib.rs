//! # dcn-baselines — the comparison topologies of the ABCCC evaluation
//!
//! Full implementations (construction **and** native routing) of every
//! structure the ABCCC paper compares against:
//!
//! * [`BCube`] — the multi-port server-centric cube (SIGCOMM 2009); best
//!   diameter, worst expansion (every growth step retrofits a NIC into
//!   every server);
//! * [`Bccc`] — BCube Connected Crossbars, the dual-port predecessor;
//!   implemented as the verified `h = 2` degeneration of [`abccc::Abccc`];
//! * [`DCell`] — the recursively-defined server-centric network
//!   (SIGCOMM 2008) with native near-shortest `DCellRouting`;
//! * [`FatTree`] — the three-tier folded-Clos switch-centric baseline with
//!   deterministic ECMP routing;
//! * [`Hypercube`] — the generalized hypercube direct network, the
//!   "unlimited ports" end of the design space.
//!
//! All of them implement [`netgraph::Topology`], so the metrics engine and
//! both simulators treat them uniformly:
//!
//! ```
//! use dcn_baselines::{BCube, BCubeParams};
//! use netgraph::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = BCube::new(BCubeParams::new(4, 1)?)?;
//! let route = t.route(netgraph::NodeId(0), netgraph::NodeId(15))?;
//! assert_eq!(route.server_hops(t.network()), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bccc;
pub mod bccc_direct;
pub mod bcube;
pub mod dcell;
pub mod fattree;
pub mod hypercube;

pub use bccc::{Bccc, BcccParams};
pub use bcube::{BCube, BCubeParams};
pub use dcell::{DCell, DCellParams};
pub use fattree::{FatTree, FatTreeParams};
pub use hypercube::{Hypercube, HypercubeParams};
