//! # dcn-baselines — the comparison topologies of the ABCCC evaluation
//!
//! Full implementations (construction **and** native routing) of every
//! structure the ABCCC paper compares against:
//!
//! * [`BCube`] — the multi-port server-centric cube (SIGCOMM 2009); best
//!   diameter, worst expansion (every growth step retrofits a NIC into
//!   every server);
//! * [`Bccc`] — BCube Connected Crossbars, the dual-port predecessor;
//!   implemented as the verified `h = 2` degeneration of [`abccc::Abccc`];
//! * [`DCell`] — the recursively-defined server-centric network
//!   (SIGCOMM 2008) with native near-shortest `DCellRouting`;
//! * [`FatTree`] — the three-tier folded-Clos switch-centric baseline with
//!   deterministic ECMP routing;
//! * [`Hypercube`] — the generalized hypercube direct network, the
//!   "unlimited ports" end of the design space;
//! * [`Jellyfish`] — the seeded random r-regular switch graph (NSDI 2012)
//!   with k-shortest-path/ECMP routing, the strongest non-cube rival;
//! * [`SpaceShuffle`] — greedy routing over seeded random ring coordinates
//!   (ICNP 2014).
//!
//! All of them implement [`netgraph::Topology`], so the metrics engine and
//! both simulators treat them uniformly:
//!
//! ```
//! use dcn_baselines::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = BCube::new(BCubeParams::new(4, 1)?)?;
//! let route = t.route(netgraph::NodeId(0), netgraph::NodeId(15))?;
//! assert_eq!(route.server_hops(t.network()), 2);
//! # Ok(())
//! # }
//! ```
//!
//! The [`family`] module is the uniform construction surface: every family
//! registers a [`family::TopologyFamily`] descriptor, and text specs such
//! as `abccc:4,2,3` or `jellyfish:v=16,r=4` build any of them through
//! [`family::build_spec`] — no per-family match arms in consumers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bccc;
pub mod bccc_direct;
pub mod bcube;
pub mod dcell;
pub mod family;
pub mod fattree;
pub mod hypercube;
pub mod jellyfish;
pub mod spaceshuffle;

pub use bccc::{Bccc, BcccParams};
pub use bcube::{BCube, BCubeParams};
pub use dcell::{DCell, DCellParams};
pub use family::{FamilyParams, TopologyFamily};
pub use fattree::{FatTree, FatTreeParams};
pub use hypercube::{Hypercube, HypercubeParams};
pub use jellyfish::{Jellyfish, JellyfishParams};
pub use spaceshuffle::{SpaceShuffle, SpaceShuffleParams};

/// One-stop import: every family, its params, the [`family`] registry
/// entry points, and the [`netgraph::Topology`] trait they all implement.
pub mod prelude {
    pub use crate::family::{
        build_spec, families, find, parse_spec, size_for_budget, size_for_servers, FamilyParams,
        TopologyFamily,
    };
    pub use crate::{
        BCube, BCubeParams, Bccc, BcccParams, DCell, DCellParams, FatTree, FatTreeParams,
        Hypercube, HypercubeParams, Jellyfish, JellyfishParams, SpaceShuffle, SpaceShuffleParams,
    };
    pub use abccc::{Abccc, AbcccParams};
    pub use netgraph::Topology;
}
