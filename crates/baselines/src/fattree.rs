//! Three-tier folded-Clos "fat-tree" (Al-Fares et al., SIGCOMM 2008) —
//! the switch-centric baseline.
//!
//! `FatTree(p)` (`p` even): `p` pods, each with `p/2` edge and `p/2`
//! aggregation switches; `(p/2)²` core switches; `p³/4` single-NIC servers.
//! All switches have radix `p`. Servers never forward, so every path is
//! exactly one *server* hop; the interesting metrics are link hops (≤ 6),
//! switch cost, and the non-expandability: growing beyond `p³/4` servers
//! requires replacing every switch with a larger radix.

use netgraph::{Network, NetworkError, NodeId, Route, RouteError, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of a `FatTree(p)` network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FatTreeParams {
    p: u32,
}

impl FatTreeParams {
    /// Creates and validates parameters (`p` even, `2 ≤ p ≤ 256`).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] on invalid `p`.
    pub fn new(p: u32) -> Result<Self, NetworkError> {
        if !(2..=256).contains(&p) || !p.is_multiple_of(2) {
            return Err(NetworkError::InvalidParameter {
                name: "p",
                reason: format!("port count must be even and in 2..=256, got {p}"),
            });
        }
        Ok(FatTreeParams { p })
    }

    /// Switch radix `p`.
    pub fn p(&self) -> u32 {
        self.p
    }

    fn half(&self) -> u64 {
        u64::from(self.p) / 2
    }

    /// Servers: `p³/4`.
    pub fn server_count(&self) -> u64 {
        u64::from(self.p) * self.half() * self.half()
    }

    /// Switches: `p` edge + `p` agg per… in total `p²` pod switches plus
    /// `(p/2)²` core.
    pub fn switch_count(&self) -> u64 {
        u64::from(self.p) * u64::from(self.p) + self.half() * self.half()
    }

    /// Cables: `3p³/4` (server–edge, edge–agg, agg–core tiers).
    pub fn wire_count(&self) -> u64 {
        3 * self.server_count()
    }

    /// Link-hop diameter: 6 (up to core and back down).
    pub fn link_diameter(&self) -> u64 {
        6
    }

    /// Bisection width in links: `p³/8` (full bisection bandwidth).
    pub fn bisection_width(&self) -> u64 {
        self.server_count() / 2
    }

    // Address helpers: server (pod, edge, idx).
    fn server_id(&self, pod: u64, edge: u64, idx: u64) -> NodeId {
        NodeId((pod * self.half() * self.half() + edge * self.half() + idx) as u32)
    }

    fn edge_id(&self, pod: u64, e: u64) -> NodeId {
        NodeId((self.server_count() + pod * self.half() + e) as u32)
    }

    fn agg_id(&self, pod: u64, a: u64) -> NodeId {
        NodeId(
            (self.server_count() + u64::from(self.p) * self.half() + pod * self.half() + a) as u32,
        )
    }

    fn core_id(&self, a: u64, j: u64) -> NodeId {
        NodeId(
            (self.server_count() + 2 * u64::from(self.p) * self.half() + a * self.half() + j)
                as u32,
        )
    }

    fn addr(&self, server: u64) -> (u64, u64, u64) {
        let per_pod = self.half() * self.half();
        (
            server / per_pod,
            (server % per_pod) / self.half(),
            server % self.half(),
        )
    }
}

impl fmt::Display for FatTreeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FatTree({})", self.p)
    }
}

impl std::str::FromStr for FatTreeParams {
    type Err = NetworkError;

    /// Parses the bare port count `"8"` or the [`fmt::Display`] form
    /// `"FatTree(8)"`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let v = crate::family::parse_positional(
            crate::family::strip_display_wrapper(text, "fattree"),
            &["p"],
        )?;
        FatTreeParams::new(v[0])
    }
}

/// A materialized `FatTree(p)` with deterministic ECMP-style routing (the
/// core/aggregation choice is a hash of the endpoint pair, spreading flows
/// across the equal-cost paths as flow-level ECMP would).
#[derive(Debug, Clone)]
pub struct FatTree {
    params: FatTreeParams,
    net: Network,
}

impl FatTree {
    /// Builds the network with unit link capacity.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: FatTreeParams) -> Result<Self, NetworkError> {
        let nodes = params.server_count() + params.switch_count();
        if nodes > abccc::MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(nodes),
                limit: u128::from(abccc::MAX_MATERIALIZED_NODES),
            });
        }
        let mut net = Network::with_capacity(nodes as usize, params.wire_count() as usize);
        for _ in 0..params.server_count() {
            net.add_server();
        }
        for _ in 0..params.switch_count() {
            net.add_switch();
        }
        let p = u64::from(params.p);
        let h = params.half();
        for pod in 0..p {
            for e in 0..h {
                let edge = params.edge_id(pod, e);
                for idx in 0..h {
                    net.add_link(params.server_id(pod, e, idx), edge, 1.0);
                }
                for a in 0..h {
                    net.add_link(edge, params.agg_id(pod, a), 1.0);
                }
            }
            for a in 0..h {
                for j in 0..h {
                    net.add_link(params.agg_id(pod, a), params.core_id(a, j), 1.0);
                }
            }
        }
        debug_assert_eq!(net.link_count() as u64, params.wire_count());
        Ok(FatTree { params, net })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &FatTreeParams {
        &self.params
    }
}

/// Cheap deterministic pair mix for the ECMP choice.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^ (x >> 29)
}

impl Topology for FatTree {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        let p = &self.params;
        if u64::from(src.0) >= p.server_count() {
            return Err(RouteError::NotAServer(src));
        }
        if u64::from(dst.0) >= p.server_count() {
            return Err(RouteError::NotAServer(dst));
        }
        if src == dst {
            return Ok(Route::new(vec![src]));
        }
        let (sp, se, _) = p.addr(u64::from(src.0));
        let (dp, de, _) = p.addr(u64::from(dst.0));
        let hash = mix(u64::from(src.0), u64::from(dst.0));
        let mut nodes = vec![src, p.edge_id(sp, se)];
        if (sp, se) != (dp, de) {
            let a = hash % p.half();
            if sp == dp {
                nodes.push(p.agg_id(sp, a));
            } else {
                let j = (hash / p.half()) % p.half();
                nodes.push(p.agg_id(sp, a));
                nodes.push(p.core_id(a, j));
                nodes.push(p.agg_id(dp, a));
            }
            nodes.push(p.edge_id(dp, de));
        }
        nodes.push(dst);
        Ok(Route::new(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(FatTreeParams::new(3).is_err());
        assert!(FatTreeParams::new(0).is_err());
        assert!(FatTreeParams::new(4).is_ok());
    }

    #[test]
    fn k4_counts() {
        let p = FatTreeParams::new(4).unwrap();
        assert_eq!(p.server_count(), 16);
        assert_eq!(p.switch_count(), 20);
        assert_eq!(p.wire_count(), 48);
        let t = FatTree::new(p).unwrap();
        assert_eq!(t.network().server_count(), 16);
        assert_eq!(t.network().switch_count(), 20);
        assert_eq!(t.network().link_count(), 48);
        // All switches have radix p.
        for sw in t.network().switch_ids() {
            assert_eq!(t.network().degree(sw), 4);
        }
        for s in t.network().server_ids() {
            assert_eq!(t.network().degree(s), 1);
        }
    }

    #[test]
    fn routing_valid_all_pairs() {
        let p = FatTreeParams::new(4).unwrap();
        let t = FatTree::new(p).unwrap();
        for s in 0..p.server_count() {
            for d in 0..p.server_count() {
                let r = t.route(NodeId(s as u32), NodeId(d as u32)).unwrap();
                r.validate(t.network(), None).unwrap();
                assert!(r.link_hops() as u64 <= p.link_diameter());
                if s != d {
                    assert_eq!(r.server_hops(t.network()), 1);
                }
            }
        }
    }

    #[test]
    fn link_diameter_matches_bfs() {
        let p = FatTreeParams::new(4).unwrap();
        let t = FatTree::new(p).unwrap();
        // max link distance between servers = 6
        let mut worst = 0;
        for s in 0..p.server_count() {
            let d = netgraph::bfs::link_distances(t.network(), NodeId(s as u32), None);
            for v in t.network().server_ids() {
                worst = worst.max(d[v.index()]);
            }
        }
        assert_eq!(u64::from(worst), p.link_diameter());
    }

    #[test]
    fn ecmp_spreads_cores() {
        let p = FatTreeParams::new(4).unwrap();
        let t = FatTree::new(p).unwrap();
        let mut cores = std::collections::HashSet::new();
        // Cross-pod pairs from server 0.
        for d in 8..16 {
            let r = t.route(NodeId(0), NodeId(d)).unwrap();
            assert_eq!(r.nodes().len(), 7);
            cores.insert(r.nodes()[3]);
        }
        assert!(cores.len() >= 2, "hash never spread across cores");
    }

    #[test]
    fn full_bisection() {
        let p = FatTreeParams::new(4).unwrap();
        let t = FatTree::new(p).unwrap();
        let side: Vec<bool> = (0..t.network().node_count())
            .map(|i| (i as u64) < p.server_count() / 2)
            .collect();
        assert_eq!(
            netgraph::maxflow::bisection_width(t.network(), &side),
            p.bisection_width()
        );
    }
}
