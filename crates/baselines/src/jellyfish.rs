//! Jellyfish (Singla et al., NSDI 2012) — the random-graph rival.
//!
//! `Jellyfish(v,r,s,seed)`: `v` switches wired into a seeded random
//! `r`-regular graph, each hosting `s` servers (switch radix `r + s`,
//! `v·s` single-NIC servers). Construction uses the configuration model
//! (stub shuffle + pairing) followed by deterministic 2-swap repair of
//! self-loops/multi-edges and cross-component swaps until connected, so a
//! fixed seed yields a byte-identical graph on any host or thread count.
//!
//! Routing is k-shortest-path as the paper proposes: [`Jellyfish::route`]
//! walks a BFS distance field with a deterministic ECMP hash tie-break,
//! [`Jellyfish::k_shortest_paths`] is Yen's algorithm over link hops, and
//! `route_avoiding` runs the same ECMP walk on the surviving graph.

use netgraph::{FaultMask, Network, NetworkError, NodeId, Route, RouteError, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Parameters of a `Jellyfish(v,r,s,seed)` network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JellyfishParams {
    v: u32,
    r: u32,
    s: u32,
    seed: u64,
}

impl JellyfishParams {
    /// Default servers per switch when a spec omits `s`.
    pub const DEFAULT_S: u32 = 1;
    /// Default construction seed when a spec omits `seed`.
    pub const DEFAULT_SEED: u64 = 7;

    /// Creates and validates parameters: `v ≥ 3` switches, network degree
    /// `2 ≤ r < v` with `v·r` even (an r-regular graph must have an even
    /// stub count), and `s ≥ 1` servers per switch.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] on any violation.
    pub fn new(v: u32, r: u32, s: u32, seed: u64) -> Result<Self, NetworkError> {
        if !(3..=1_000_000).contains(&v) {
            return Err(NetworkError::InvalidParameter {
                name: "v",
                reason: format!("switch count must be in 3..=1000000, got {v}"),
            });
        }
        if r < 2 || r >= v {
            return Err(NetworkError::InvalidParameter {
                name: "r",
                reason: format!("network degree must satisfy 2 <= r < v, got r={r} v={v}"),
            });
        }
        if u64::from(v) * u64::from(r) % 2 != 0 {
            return Err(NetworkError::InvalidParameter {
                name: "r",
                reason: format!("v*r must be even for an r-regular graph, got v={v} r={r}"),
            });
        }
        if !(1..=256).contains(&s) {
            return Err(NetworkError::InvalidParameter {
                name: "s",
                reason: format!("servers per switch must be in 1..=256, got {s}"),
            });
        }
        Ok(JellyfishParams { v, r, s, seed })
    }

    /// Number of switches `v`.
    pub fn v(&self) -> u32 {
        self.v
    }

    /// Inter-switch degree `r`.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// Servers per switch `s`.
    pub fn s(&self) -> u32 {
        self.s
    }

    /// Construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Servers: `v·s`.
    pub fn server_count(&self) -> u64 {
        u64::from(self.v) * u64::from(self.s)
    }

    /// Switches: `v`.
    pub fn switch_count(&self) -> u64 {
        u64::from(self.v)
    }

    /// Cables: `v·s` server links plus `v·r/2` switch-switch links.
    pub fn wire_count(&self) -> u64 {
        self.server_count() + u64::from(self.v) * u64::from(self.r) / 2
    }

    /// Uniform switch radix `r + s`.
    pub fn switch_radix(&self) -> u32 {
        self.r + self.s
    }

    fn switch_node(&self, sw: u32) -> NodeId {
        NodeId(self.server_count() as u32 + sw)
    }

    fn host_switch(&self, server: NodeId) -> NodeId {
        self.switch_node(server.0 / self.s)
    }
}

impl fmt::Display for JellyfishParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Jellyfish(v={},r={},s={},seed={})",
            self.v, self.r, self.s, self.seed
        )
    }
}

impl FromStr for JellyfishParams {
    type Err = NetworkError;

    /// Parses `v=64,r=4,s=1,seed=7` (any key order; `s` and `seed`
    /// optional) or the [`fmt::Display`] form `Jellyfish(v=64,...)`.
    fn from_str(text: &str) -> Result<Self, NetworkError> {
        let body = crate::family::strip_display_wrapper(text, "jellyfish");
        let (mut v, mut r) = (None, None);
        let (mut s, mut seed) = (Self::DEFAULT_S, Self::DEFAULT_SEED);
        for field in body.split(',') {
            let (key, value) = crate::family::key_value(field)?;
            match key {
                "v" => v = Some(crate::family::parse_u32("v", value)?),
                "r" => r = Some(crate::family::parse_u32("r", value)?),
                "s" => s = crate::family::parse_u32("s", value)?,
                "seed" => seed = crate::family::parse_u64("seed", value)?,
                other => {
                    return Err(NetworkError::InvalidParameter {
                        name: "spec",
                        reason: format!("unknown jellyfish key `{other}` (want v,r,s,seed)"),
                    })
                }
            }
        }
        let v = v.ok_or(NetworkError::InvalidParameter {
            name: "v",
            reason: "jellyfish spec requires v=<switches>".into(),
        })?;
        let r = r.ok_or(NetworkError::InvalidParameter {
            name: "r",
            reason: "jellyfish spec requires r=<degree>".into(),
        })?;
        JellyfishParams::new(v, r, s, seed)
    }
}

/// Normalized undirected edge key.
fn norm(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One configuration-model draw: shuffle `v·r` stubs, pair consecutively,
/// then repair self-loops and duplicate edges with 2-swaps (each successful
/// swap strictly reduces the conflict count and preserves degrees). Returns
/// `None` if a repair pass gets stuck (caller retries with a derived seed).
fn try_regular_edges(v: u32, r: u32, rng: &mut StdRng) -> Option<Vec<(u32, u32)>> {
    let mut stubs: Vec<u32> = (0..v)
        .flat_map(|sw| std::iter::repeat_n(sw, r as usize))
        .collect();
    stubs.shuffle(rng);
    let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| norm(p[0], p[1])).collect();
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    loop {
        let mut conflicts = Vec::new();
        seen.clear();
        for (i, &e) in edges.iter().enumerate() {
            if e.0 == e.1 || !seen.insert(e) {
                conflicts.push(i);
            }
        }
        if conflicts.is_empty() {
            return Some(edges);
        }
        for &i in &conflicts {
            let (u, vv) = edges[i];
            let start = rng.gen_range(0..edges.len());
            let mut swapped = false;
            for off in 0..edges.len() {
                let j = (start + off) % edges.len();
                if j == i {
                    continue;
                }
                let (x, y) = edges[j];
                // Candidate rewiring (u,v),(x,y) -> (u,x),(v,y): all four
                // endpoints distinct, neither new edge already present.
                if u == x || u == y || vv == x || vv == y {
                    continue;
                }
                let (a, b) = (norm(u, x), norm(vv, y));
                if a == b || seen.contains(&a) || seen.contains(&b) {
                    continue;
                }
                seen.remove(&norm(u, vv));
                seen.remove(&norm(x, y));
                seen.insert(a);
                seen.insert(b);
                edges[i] = a;
                edges[j] = b;
                swapped = true;
                break;
            }
            if !swapped {
                return None;
            }
        }
    }
}

/// Merges graph components with degree-preserving cross-component 2-swaps.
/// An edge from each of two different components can always be rewired
/// across them without creating a self-loop or duplicate (the new edges
/// span components, where no edge existed).
fn connect_components(v: u32, edges: &mut [(u32, u32)]) {
    loop {
        // Union-find over switches.
        let mut parent: Vec<u32> = (0..v).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(a, b) in edges.iter() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra as usize] = rb;
            }
        }
        let root0 = find(&mut parent, 0);
        let Some(outside) = (0..v).find(|&x| find(&mut parent, x) != root0) else {
            return;
        };
        let root1 = find(&mut parent, outside);
        let i = edges
            .iter()
            .position(|&(a, _)| find(&mut parent, a) == root0)
            .expect("component 0 has r-regular degree, so it has edges");
        let j = edges
            .iter()
            .position(|&(a, _)| find(&mut parent, a) == root1)
            .expect("every component of an r>=2-regular graph has edges");
        let ((a, b), (c, d)) = (edges[i], edges[j]);
        edges[i] = norm(a, c);
        edges[j] = norm(b, d);
    }
}

/// A materialized `Jellyfish(v,r,s,seed)` random regular graph with
/// k-shortest-path routing.
#[derive(Debug, Clone)]
pub struct Jellyfish {
    params: JellyfishParams,
    net: Network,
}

impl Jellyfish {
    /// Builds the seeded random r-regular network with unit link capacity.
    /// Deterministic: the same parameters (seed included) always produce an
    /// identical [`Network`], independent of host or thread count.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooLarge`] above the materialization guard.
    pub fn new(params: JellyfishParams) -> Result<Self, NetworkError> {
        let nodes = params.server_count() + params.switch_count();
        if nodes > abccc::MAX_MATERIALIZED_NODES {
            return Err(NetworkError::TooLarge {
                nodes: u128::from(nodes),
                limit: u128::from(abccc::MAX_MATERIALIZED_NODES),
            });
        }
        let mut edges = None;
        for attempt in 0.. {
            let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(attempt));
            if let Some(found) = try_regular_edges(params.v, params.r, &mut rng) {
                edges = Some(found);
                break;
            }
        }
        let mut edges = edges.expect("loop breaks only with edges");
        connect_components(params.v, &mut edges);
        edges.sort_unstable();

        let mut net = Network::with_capacity(nodes as usize, params.wire_count() as usize);
        for _ in 0..params.server_count() {
            net.add_server();
        }
        for _ in 0..params.switch_count() {
            net.add_switch();
        }
        for srv in 0..params.server_count() as u32 {
            net.add_link(NodeId(srv), params.host_switch(NodeId(srv)), 1.0);
        }
        for &(a, b) in &edges {
            net.add_link(params.switch_node(a), params.switch_node(b), 1.0);
        }
        debug_assert_eq!(net.link_count() as u64, params.wire_count());
        Ok(Jellyfish { params, net })
    }

    /// The parameters this network was built from.
    pub fn params(&self) -> &JellyfishParams {
        &self.params
    }

    fn check_server(&self, n: NodeId) -> Result<(), RouteError> {
        if u64::from(n.0) >= self.params.server_count() {
            Err(RouteError::NotAServer(n))
        } else {
            Ok(())
        }
    }

    /// BFS distance field from `dst` walked src→dst, breaking equal-cost
    /// ties with a deterministic hash of (src, dst, position) — flow-level
    /// ECMP over the shortest-path DAG.
    fn ecmp_walk(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: Option<&FaultMask>,
    ) -> Result<Route, RouteError> {
        if src == dst {
            return Ok(Route::new(vec![src]));
        }
        let dist = netgraph::bfs::link_distances(&self.net, dst, mask);
        if dist[src.index()] == u32::MAX {
            return Err(RouteError::Unreachable { src, dst });
        }
        let hash = mix(u64::from(src.0), u64::from(dst.0));
        let mut nodes = vec![src];
        let mut cur = src;
        while cur != dst {
            let d = dist[cur.index()];
            let next: Vec<NodeId> = self
                .net
                .neighbors(cur)
                .iter()
                .filter(|(n, l)| {
                    dist[n.index()] == d - 1
                        && mask.is_none_or(|m| m.node_alive(*n) && m.link_alive(*l))
                })
                .map(|&(n, _)| n)
                .collect();
            debug_assert!(!next.is_empty(), "BFS distance field admits a step");
            cur = next[(mix(hash, nodes.len() as u64) % next.len() as u64) as usize];
            nodes.push(cur);
        }
        Ok(Route::new(nodes))
    }

    /// Yen's algorithm: up to `k` loopless shortest paths by link hops,
    /// shortest first, deterministic. This is the routing basis the
    /// Jellyfish paper proposes (k-shortest-paths + MPTCP).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NotAServer`] on a non-server endpoint and
    /// [`RouteError::Unreachable`] if no path exists at all.
    pub fn k_shortest_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        k: usize,
    ) -> Result<Vec<Route>, RouteError> {
        self.check_server(src)?;
        self.check_server(dst)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        if src == dst {
            return Ok(vec![Route::new(vec![src])]);
        }
        let first = netgraph::bfs::link_shortest_path(&self.net, src, dst, None)
            .ok_or(RouteError::Unreachable { src, dst })?;
        let mut found: Vec<Vec<NodeId>> = vec![first];
        let mut candidates: Vec<Vec<NodeId>> = Vec::new();
        while found.len() < k {
            let prev = found.last().expect("nonempty").clone();
            for spur_idx in 0..prev.len() - 1 {
                let spur = prev[spur_idx];
                let root = &prev[..=spur_idx];
                let mut mask = FaultMask::new(&self.net);
                for path in found.iter().chain(candidates.iter()) {
                    if path.len() > spur_idx && path[..=spur_idx] == *root {
                        if let Some(l) = self.net.find_link(path[spur_idx], path[spur_idx + 1]) {
                            mask.fail_link(l);
                        }
                    }
                }
                for &n in &root[..spur_idx] {
                    mask.fail_node(n);
                }
                if let Some(tail) =
                    netgraph::bfs::link_shortest_path(&self.net, spur, dst, Some(&mask))
                {
                    let mut path = root[..spur_idx].to_vec();
                    path.extend(tail);
                    if !found.contains(&path) && !candidates.contains(&path) {
                        candidates.push(path);
                    }
                }
            }
            // Shortest candidate next; ties broken by node sequence so the
            // order is a pure function of the graph.
            candidates.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            if candidates.is_empty() {
                break;
            }
            found.push(candidates.remove(0));
        }
        Ok(found.into_iter().map(Route::new).collect())
    }
}

/// Cheap deterministic pair mix for the ECMP choice (same construction as
/// the fat-tree baseline).
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^ (x >> 29)
}

impl Topology for Jellyfish {
    fn name(&self) -> String {
        self.params.to_string()
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        self.check_server(src)?;
        self.check_server(dst)?;
        self.ecmp_walk(src, dst, None)
    }

    fn parallel_routes(
        &self,
        src: NodeId,
        dst: NodeId,
        want: usize,
    ) -> Result<Vec<Route>, RouteError> {
        // Over-sample Yen, then greedily keep internally disjoint paths.
        let pool = self.k_shortest_paths(src, dst, want.saturating_mul(4).max(8))?;
        let mut picked: Vec<Route> = Vec::new();
        for r in pool {
            if picked.len() >= want {
                break;
            }
            if picked.iter().all(|p| p.is_internally_disjoint_from(&r)) {
                picked.push(r);
            }
        }
        Ok(picked)
    }

    fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        mask: &FaultMask,
    ) -> Result<Route, RouteError> {
        self.check_server(src)?;
        self.check_server(dst)?;
        if !mask.node_alive(src) || !mask.node_alive(dst) {
            return Err(RouteError::Unreachable { src, dst });
        }
        self.ecmp_walk(src, dst, Some(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(JellyfishParams::new(2, 2, 1, 0).is_err()); // v too small
        assert!(JellyfishParams::new(8, 1, 1, 0).is_err()); // r too small
        assert!(JellyfishParams::new(8, 8, 1, 0).is_err()); // r >= v
        assert!(JellyfishParams::new(5, 3, 1, 0).is_err()); // v*r odd
        assert!(JellyfishParams::new(8, 3, 0, 0).is_err()); // s zero
        assert!(JellyfishParams::new(8, 3, 1, 0).is_ok());
    }

    #[test]
    fn spec_roundtrip() {
        let p: JellyfishParams = "v=16,r=4,s=2,seed=9".parse().unwrap();
        assert_eq!(p, JellyfishParams::new(16, 4, 2, 9).unwrap());
        // Defaults and display-form re-parse.
        let q: JellyfishParams = "r=4,v=16".parse().unwrap();
        assert_eq!(q, JellyfishParams::new(16, 4, 1, 7).unwrap());
        let back: JellyfishParams = p.to_string().parse().unwrap();
        assert_eq!(back, p);
        assert!("v=16".parse::<JellyfishParams>().is_err());
        assert!("v=16,r=4,bogus=1".parse::<JellyfishParams>().is_err());
    }

    #[test]
    fn regular_connected_counts() {
        for seed in 0..8 {
            let p = JellyfishParams::new(20, 4, 2, seed).unwrap();
            let t = Jellyfish::new(p).unwrap();
            assert_eq!(t.network().server_count() as u64, p.server_count());
            assert_eq!(t.network().switch_count() as u64, p.switch_count());
            assert_eq!(t.network().link_count() as u64, p.wire_count());
            for sw in t.network().switch_ids() {
                assert_eq!(t.network().degree(sw) as u32, p.switch_radix());
            }
            assert!(netgraph::connectivity::servers_connected(t.network(), None));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = JellyfishParams::new(16, 3, 1, 42).unwrap();
        let (a, b) = (Jellyfish::new(p).unwrap(), Jellyfish::new(p).unwrap());
        assert_eq!(a.network().links(), b.network().links());
        let q = JellyfishParams::new(16, 3, 1, 43).unwrap();
        let c = Jellyfish::new(q).unwrap();
        assert_ne!(a.network().links(), c.network().links());
    }

    #[test]
    fn routing_valid_all_pairs() {
        let p = JellyfishParams::new(12, 3, 2, 1).unwrap();
        let t = Jellyfish::new(p).unwrap();
        let n = p.server_count() as u32;
        for s in 0..n {
            for d in 0..n {
                let r = t.route(NodeId(s), NodeId(d)).unwrap();
                r.validate(t.network(), None).unwrap();
                // ECMP walk is a shortest path in link hops.
                let bfs =
                    netgraph::bfs::link_shortest_path(t.network(), NodeId(s), NodeId(d), None)
                        .unwrap();
                assert_eq!(r.link_hops(), bfs.len() - 1);
            }
        }
        assert!(t.route(NodeId(n), NodeId(0)).is_err());
    }

    #[test]
    fn yen_paths_are_sorted_simple_and_distinct() {
        let p = JellyfishParams::new(10, 3, 1, 5).unwrap();
        let t = Jellyfish::new(p).unwrap();
        let paths = t.k_shortest_paths(NodeId(0), NodeId(7), 5).unwrap();
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].link_hops() <= w[1].link_hops());
            assert_ne!(w[0], w[1]);
        }
        for r in &paths {
            r.validate(t.network(), None).unwrap();
        }
    }

    #[test]
    fn parallel_routes_disjoint() {
        let p = JellyfishParams::new(12, 4, 1, 3).unwrap();
        let t = Jellyfish::new(p).unwrap();
        let rs = t.parallel_routes(NodeId(0), NodeId(9), 3).unwrap();
        assert!(!rs.is_empty());
        for i in 0..rs.len() {
            for j in i + 1..rs.len() {
                assert!(rs[i].is_internally_disjoint_from(&rs[j]));
            }
        }
    }

    #[test]
    fn route_avoiding_detours() {
        let p = JellyfishParams::new(12, 3, 1, 2).unwrap();
        let t = Jellyfish::new(p).unwrap();
        let primary = t.route(NodeId(0), NodeId(8)).unwrap();
        let mut mask = FaultMask::new(t.network());
        // Fail every intermediate node of the primary path.
        for &n in &primary.nodes()[1..primary.nodes().len() - 1] {
            mask.fail_node(n);
        }
        match t.route_avoiding(NodeId(0), NodeId(8), &mask) {
            Ok(r) => r.validate(t.network(), Some(&mask)).unwrap(),
            Err(RouteError::Unreachable { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
