//! End-to-end smoke tests of the `abccc-cli` binary: every subcommand is
//! invoked through a real process and its stdout/stderr checked.

use std::process::Command;

fn cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_abccc-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(args: &[&str]) -> String {
    let out = cli(args);
    assert!(
        out.status.success(),
        "`{args:?}` failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8")
}

#[test]
fn props_prints_structure() {
    let out = stdout(&["props", "abccc", "4", "1", "2"]);
    assert!(out.contains("ABCCC(4,1,2)"));
    assert!(out.contains("servers           32"));
    assert!(out.contains("diameter          4 server hops"));
    assert!(out.contains("bisection"));
}

#[test]
fn route_lists_hops() {
    let out = stdout(&["route", "bcube", "3", "1", "0", "8"]);
    assert!(out.contains("BCube(3,1)"));
    assert!(out.contains("server n0"));
    assert!(out.contains("switch"));
    assert!(out.contains("server n8"));
}

#[test]
fn parallel_reports_exact_maximum() {
    let out = stdout(&["parallel", "abccc", "3", "1", "2", "0", "17"]);
    assert!(out.contains("disjoint paths constructed"));
    assert!(out.contains("exact maximum"));
}

#[test]
fn simulate_reports_rates() {
    let out = stdout(&[
        "simulate",
        "abccc",
        "2",
        "1",
        "2",
        "--pattern",
        "permutation",
    ]);
    assert!(out.contains("aggregate"));
    assert!(out.contains("ABT"));
}

#[test]
fn expand_reports_legacy_untouched() {
    let out = stdout(&["expand", "4", "1", "3", "--steps", "2"]);
    assert!(out.contains("legacy NICs added  0"));
    assert!(out.contains("untouched"));
}

#[test]
fn capex_breaks_down_costs() {
    let out = stdout(&["capex", "fattree", "4"]);
    assert!(out.contains("switches"));
    assert!(out.contains("per server"));
}

#[test]
fn dot_emits_graphviz() {
    let out = stdout(&["dot", "abccc", "2", "1", "2"]);
    assert!(out.starts_with("graph "));
    assert!(out.contains(" -- "));
}

#[test]
fn svg_emits_markup() {
    let out = stdout(&["svg", "bcube", "2", "1"]);
    assert!(out.starts_with("<svg"));
    assert!(out.trim_end().ends_with("</svg>"));
}

#[test]
fn broadcast_reports_tree() {
    let out = stdout(&["broadcast", "3", "1", "2", "0"]);
    assert!(out.contains("one-to-all from server 0"));
    assert!(out.contains("tree depth"));
}

#[test]
fn trace_replays_csv() {
    let dir = std::env::temp_dir().join("abccc_cli_smoke");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("trace.csv");
    std::fs::write(&path, "# demo\n0,5,100,0\n3,1,10,50\n").expect("write");
    let out = stdout(&[
        "trace",
        "bcube",
        "3",
        "1",
        "--file",
        path.to_str().expect("utf-8"),
    ]);
    assert!(out.contains("replayed 2 flows"));
    assert!(out.contains("fairness"));
}

#[test]
fn design_ranks_candidates() {
    let out = stdout(&["design", "1000", "--objective", "latency"]);
    assert!(out.contains("candidates reaching"));
    assert!(out.contains("ABCCC("));
}

#[test]
fn bad_family_fails_with_usage() {
    let out = cli(&["props", "nonsense", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown family"));
    assert!(err.contains("usage:"));
}

#[test]
fn help_prints_usage() {
    let out = stdout(&["help"]);
    assert!(out.contains("abccc-cli props"));
    assert!(out.contains("families:"));
}

#[test]
fn out_of_range_server_id_rejected() {
    let out = cli(&["route", "abccc", "2", "1", "2", "0", "999"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("server ids must be <"));
}

#[test]
fn props_json_is_parseable_and_has_bisection() {
    let out = stdout(&["props", "abccc", "4", "1", "2", "--json"]);
    let v: serde::Value = serde_json::from_str(&out).expect("valid JSON");
    let serde::Value::Map(m) = v else {
        panic!("expected object")
    };
    let get = |k: &str| m.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    assert_eq!(get("servers"), Some(&serde::Value::U64(32)));
    assert!(get("exact_bisection_links").is_some());
}

#[test]
fn simulate_json_includes_pattern_and_seed() {
    let out = stdout(&[
        "simulate",
        "abccc",
        "2",
        "1",
        "2",
        "--pattern",
        "permutation",
        "--json",
    ]);
    let v: serde::Value = serde_json::from_str(&out).expect("valid JSON");
    let serde::Value::Map(m) = v else {
        panic!("expected object")
    };
    assert!(m.iter().any(|(k, _)| k == "pattern"));
    assert!(m.iter().any(|(k, _)| k == "seed"));
    assert!(m.iter().any(|(k, _)| k == "aggregate_rate"));
}

#[test]
fn resilience_reports_campaign_summary() {
    let out = stdout(&["resilience", "4", "2", "2", "--trials", "4", "--seed", "1"]);
    assert!(out.contains("`uniform` campaign"));
    assert!(out.contains("route completion"));
    assert!(out.contains("throughput retention"));
    assert!(out.contains("per trial:"));
}

#[test]
fn resilience_json_is_byte_identical_across_runs() {
    let args = [
        "resilience",
        "4",
        "2",
        "2",
        "--trials",
        "4",
        "--seed",
        "7",
        "--json",
    ];
    let a = stdout(&args);
    let b = stdout(&args);
    assert_eq!(a, b, "fixed-seed campaign JSON must be reproducible");
    let v: serde::Value = serde_json::from_str(&a).expect("valid JSON");
    let serde::Value::Map(m) = v else {
        panic!("expected object")
    };
    assert!(m.iter().any(|(k, _)| k == "summary"));
    assert!(a.contains("route_completion"));
}

#[test]
fn resilience_scenarios_and_routers_run() {
    let out = stdout(&[
        "resilience",
        "3",
        "2",
        "2",
        "--scenario",
        "level",
        "--level",
        "1",
        "--router",
        "vlb",
        "--pattern",
        "permutation",
        "--trials",
        "2",
        "--no-throughput",
    ]);
    assert!(out.contains("`level_switches` campaign"));
    assert!(out.contains("router `vlb"));
}

#[test]
fn resilience_accepts_topology_specs() {
    // Spec form of the ABCCC campaign matches the positional form exactly.
    let flags = ["--trials", "4", "--seed", "7", "--json"];
    let positional: Vec<&str> = ["resilience", "4", "2", "2"]
        .into_iter()
        .chain(flags)
        .collect();
    let spec: Vec<&str> = ["resilience", "abccc:4,2,2"]
        .into_iter()
        .chain(flags)
        .collect();
    assert_eq!(stdout(&positional), stdout(&spec));

    // Non-ABCCC families run the campaign on their native routing plane.
    let out = stdout(&[
        "resilience",
        "jellyfish:v=10,r=3,seed=7",
        "--trials",
        "2",
        "--rate",
        "0.1",
        "--pairs",
        "16",
        "--no-throughput",
    ]);
    assert!(out.contains("Jellyfish(v=10,r=3,s=1,seed=7)"));
    assert!(out.contains("router `native`"));
}

#[test]
fn resilience_rejects_cube_scenarios_on_native_plane() {
    let out = cli(&[
        "resilience",
        "spaceshuffle:v=8,seed=7",
        "--scenario",
        "level",
        "--trials",
        "2",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires an ABCCC topology"));
}

#[test]
fn json_rejected_for_unsupported_subcommand() {
    let out = cli(&["route", "abccc", "2", "1", "2", "0", "3", "--json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--json is not supported"));
}

#[test]
fn trace_flag_prints_spans_and_counters() {
    let out = cli(&[
        "simulate",
        "abccc",
        "2",
        "1",
        "2",
        "--pattern",
        "permutation",
        "--trace",
    ]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("flowsim.run"), "missing span: {err}");
    assert!(
        err.contains("flowsim.flows_routed"),
        "missing counter: {err}"
    );
}

#[test]
fn metrics_out_writes_jsonl() {
    let dir = std::env::temp_dir().join(format!("abccc_cli_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("metrics.jsonl");
    let out = cli(&[
        "props",
        "abccc",
        "2",
        "1",
        "2",
        "--metrics-out",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success());
    let body = std::fs::read_to_string(&path).expect("metrics file written");
    assert!(!body.is_empty());
    for line in body.lines() {
        let _: serde::Value = serde_json::from_str(line).expect("each line is JSON");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiments_list_indexes_registry() {
    let out = stdout(&["experiments", "list"]);
    assert!(out.contains("table1_properties"));
    assert!(out.contains("fig17_adversarial"));
    assert!(out.contains("scale_demo"));
    assert!(out.contains("fib_throughput"));
    assert!(out.contains("scale_frontier"));
    assert!(out.contains("arena"));
    assert!(out.contains("traffic_arena"));
    assert!(out.contains("route_server"));
    assert!(out.contains("Figure 11"));
    // One row per registered experiment plus header and trailer.
    assert_eq!(out.lines().count(), 27, "unexpected index length:\n{out}");
}

#[test]
fn experiments_run_prints_table_and_artifacts() {
    let dir = std::env::temp_dir().join(format!("abccc_cli_experiments_{}", std::process::id()));
    let run = cli(&[
        "experiments",
        "run",
        "fig1_diameter",
        "--preset",
        "tiny",
        "--json",
        dir.to_str().expect("utf-8 path"),
    ]);
    assert!(run.status.success());
    let out = String::from_utf8(run.stdout).expect("utf-8");
    assert!(out.contains("== Figure 1: diameter"));
    assert!(out.contains("[tiny]"));
    // The engine trailer is provenance (wall clock, worker count) and
    // goes to stderr so report stdout is thread-count deterministic.
    assert!(String::from_utf8_lossy(&run.stderr).contains("engine: 1 experiments"));
    assert!(!out.contains("engine:"));
    assert!(dir.join("fig1_diameter.json").is_file());
    assert!(dir.join("fig1_diameter.manifest.json").is_file());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fib_compile_reports_table_stats() {
    let out = stdout(&["fib", "compile", "2", "2", "2"]);
    assert!(out.contains("compiled forwarding table"));
    assert!(out.contains("strategy     destination-aware"));
    assert!(out.contains("layout       dense"));
    assert!(out.contains("servers      24"));
}

#[test]
fn fib_accepts_abccc_specs_only() {
    // The spec form compiles the same table as the positional form
    // (drop the wall-clock `compile time` line before comparing).
    let stable = |out: String| -> String {
        out.lines()
            .filter(|l| !l.contains("compile time"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        stable(stdout(&["fib", "compile", "abccc:2,2,2"])),
        stable(stdout(&["fib", "compile", "2", "2", "2"]))
    );
    // Digit-indexed FIBs have no meaning on random graphs.
    let out = cli(&["fib", "compile", "jellyfish:v=8,r=3,seed=7"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires an ABCCC topology"));
}

#[test]
fn fib_compile_hier_layout_is_smaller() {
    let dense = stdout(&["--json", "fib", "compile", "2", "2", "2"]);
    let hier = stdout(&[
        "--json", "fib", "compile", "2", "2", "2", "--layout", "hier",
    ]);
    let bytes = |text: &str, layout: &str| -> u64 {
        let v: serde::Value = serde_json::from_str(text).expect("valid JSON");
        let serde::Value::Map(m) = v else {
            panic!("expected object")
        };
        let got = m
            .iter()
            .find_map(|(k, v)| (k == "layout").then_some(v))
            .expect("layout field");
        assert_eq!(got, &serde::Value::Str(layout.to_string()));
        match m
            .iter()
            .find_map(|(k, v)| (k == "table_bytes").then_some(v))
        {
            Some(serde::Value::U64(b)) => *b,
            other => panic!("table_bytes missing or non-numeric: {other:?}"),
        }
    };
    assert!(
        bytes(&hier, "hier") < bytes(&dense, "dense"),
        "hier layout must be smaller than dense even at 24 servers"
    );
}

#[test]
fn fib_query_walks_the_compiled_table() {
    let out = stdout(&["fib", "query", "2", "2", "2", "0", "17"]);
    assert!(out.contains("via compiled table"));
    assert!(out.contains("tier primary"));
    assert!(out.contains("server n0"));
    assert!(out.contains("server n17"));
}

#[test]
fn fib_bench_digest_is_shard_independent() {
    let dir = std::env::temp_dir().join(format!("abccc_cli_fib_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let d1 = dir.join("digest1.json");
    let d8 = dir.join("digest8.json");
    for (shards, path) in [("1", &d1), ("8", &d8)] {
        let out = stdout(&[
            "fib",
            "bench",
            "2",
            "2",
            "2",
            "--queries",
            "1000",
            "--fail-rate",
            "0.1",
            "--shards",
            shards,
            "--digest",
            path.to_str().expect("utf-8 path"),
        ]);
        assert!(out.contains("lookups/s"));
        assert!(out.contains("route hash"));
    }
    let a = std::fs::read(&d1).expect("digest written");
    let b = std::fs::read(&d8).expect("digest written");
    assert_eq!(a, b, "bench digest must not depend on the shard count");
    let v: serde::Value =
        serde_json::from_str(&String::from_utf8(a).expect("utf-8")).expect("digest is valid JSON");
    let serde::Value::Map(m) = v else {
        panic!("expected object")
    };
    assert!(m.iter().any(|(k, _)| k == "route_hash"));
    assert!(m.iter().any(|(k, _)| k == "fallbacks"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The digest deliberately excludes the layout, so a hier-layout bench run
/// must reproduce the dense digest byte for byte — the CLI-level version of
/// the table-equivalence proptests.
#[test]
fn fib_bench_digest_is_layout_independent() {
    let dir = std::env::temp_dir().join(format!("abccc_cli_fib_layout_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let dense = dir.join("dense.json");
    let hier = dir.join("hier.json");
    for (layout, path) in [("dense", &dense), ("hier", &hier)] {
        let out = stdout(&[
            "fib",
            "bench",
            "2",
            "2",
            "2",
            "--queries",
            "1000",
            "--fail-rate",
            "0.1",
            "--layout",
            layout,
            "--digest",
            path.to_str().expect("utf-8 path"),
        ]);
        assert!(out.contains("lookups/s"));
    }
    let a = std::fs::read(&dense).expect("digest written");
    let b = std::fs::read(&hier).expect("digest written");
    assert_eq!(a, b, "bench digest must not depend on the FIB layout");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fib_rejects_bad_layout() {
    let out = cli(&["fib", "compile", "2", "1", "2", "--layout", "sparse"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown layout"));
}

#[test]
fn topo_stats_exact_matches_estimate_on_small_net() {
    let exact = stdout(&["topo", "stats", "abccc", "2", "2", "2"]);
    assert!(exact.contains("diameter  6 server hops (exact)"));
    assert!(exact.contains("APL       3.2174"));
    let est = stdout(&["topo", "stats", "abccc", "2", "2", "2", "--estimate"]);
    // 24 servers and 24 default samples: every source is visited, so the
    // sampled numbers coincide with the exact sweep.
    assert!(est.contains("diameter      ≥ 6 server hops"));
    assert!(est.contains("APL           3.2174"));
    assert!(est.contains("bisection     ≤"));
}

#[test]
fn topo_stats_estimate_is_deterministic() {
    let args = [
        "--json",
        "topo",
        "stats",
        "abccc",
        "3",
        "2",
        "2",
        "--estimate",
        "--samples",
        "16",
        "--seed",
        "11",
        "--trials",
        "3",
    ];
    let a = stdout(&args);
    let b = stdout(&args);
    assert_eq!(a, b, "sampled stats must be reproducible for a fixed seed");
    let v: serde::Value = serde_json::from_str(&a).expect("valid JSON");
    let serde::Value::Map(m) = v else {
        panic!("expected object")
    };
    for key in [
        "diameter_lower_bound",
        "apl_mean",
        "apl_ci95",
        "bisection_min_cut",
    ] {
        assert!(m.iter().any(|(k, _)| k == key), "missing `{key}`:\n{a}");
    }
}

#[test]
fn topo_rejects_unknown_subcommand() {
    let out = cli(&["topo", "diameter", "abccc", "2", "1", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown topo subcommand"));
}

#[test]
fn fib_rejects_bad_endpoints_and_subcommands() {
    let out = cli(&["fib", "query", "2", "1", "2", "0", "999"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("server ids must be <"));
    let out = cli(&["fib", "decompile", "2", "1", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown fib subcommand"));
}

#[test]
fn experiments_run_rejects_unknown_name_and_preset() {
    let out = cli(&["experiments", "run", "fig99_nope", "--preset", "tiny"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
    let out = cli(&["experiments", "run", "--all", "--preset", "huge"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

#[test]
fn perf_record_then_diff_is_clean() {
    let dir = std::env::temp_dir().join("abccc_cli_perf_smoke");
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().expect("utf-8 tmpdir");
    let record = stdout(&[
        "perf",
        "record",
        "table1_properties",
        "--preset",
        "tiny",
        "--runs",
        "1",
        "--baselines",
        dir_s,
    ]);
    assert!(record.contains("recorded 1 baseline(s)"), "{record}");
    assert!(dir.join("table1_properties.json").exists());
    let diff = stdout(&[
        "--json",
        "perf",
        "diff",
        "table1_properties",
        "--preset",
        "tiny",
        "--runs",
        "1",
        "--baselines",
        dir_s,
    ]);
    assert!(diff.contains("\"ok\": true"), "{diff}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_diff_without_baselines_fails() {
    let out = cli(&[
        "perf",
        "diff",
        "table1_properties",
        "--preset",
        "tiny",
        "--runs",
        "1",
        "--baselines",
        "/nonexistent/abccc_perf_baselines",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no baselines"));
}

#[test]
fn trace_out_produces_a_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("abccc_cli_trace_smoke");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let trace = dir.join("trace.json");
    let flame = dir.join("flame.txt");
    stdout(&[
        "--trace-out",
        trace.to_str().expect("utf-8"),
        "--flame-out",
        flame.to_str().expect("utf-8"),
        "fib",
        "bench",
        "2",
        "1",
        "2",
        "--queries",
        "200",
    ]);
    let stat = stdout(&["perf", "trace-stat", trace.to_str().expect("utf-8")]);
    assert!(stat.contains("valid Chrome trace"), "{stat}");
    assert!(!stat.contains(" 0 spans"), "{stat}");
    let folded = std::fs::read_to_string(&flame).expect("flame file");
    assert!(
        folded.lines().any(|l| l.contains("fib.query_batch")),
        "{folded}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_rejects_unknown_subcommand() {
    let out = cli(&["perf", "measure"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown perf subcommand"));
}

#[test]
fn fib_bench_reports_hop_quantiles() {
    let out = stdout(&["fib", "bench", "2", "1", "2", "--queries", "500"]);
    assert!(out.contains("link hops"), "{out}");
    assert!(out.contains("p50≤"), "{out}");
    assert!(out.contains("p9999≤"), "{out}");
    assert!(out.contains("lookup ns"), "{out}");
}

#[test]
fn sim_list_prints_catalog() {
    let out = stdout(&["sim", "list"]);
    for name in [
        "all_reduce",
        "all_to_all",
        "incast",
        "storage_rebuild",
        "diurnal",
    ] {
        assert!(out.contains(name), "catalog missing {name}:\n{out}");
    }
}

#[test]
fn sim_run_reports_scenario() {
    let out = stdout(&[
        "sim", "run", "incast", "abccc", "2", "1", "2", "--seed", "7",
    ]);
    assert!(out.contains("`incast`"));
    assert!(out.contains("packet"));
    assert!(out.contains("offered"));
    assert!(out.contains("fct p50/p99/p999"));
}

#[test]
fn sim_run_emits_json_with_midflow_fault() {
    let out = stdout(&["--json", "sim", "run", "storage_rebuild", "fattree:6"]);
    assert!(out.contains("\"scenario\": \"storage_rebuild\""));
    assert!(out.contains("\"faults_fired\": 1"));
    assert!(out.contains("\"per_flow\""));
}

#[test]
fn sim_rejects_unknown_scenario() {
    let out = cli(&["sim", "run", "nope", "abccc", "2", "1", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
}

#[test]
fn loadgen_reports_throughput_and_digest() {
    let out = stdout(&[
        "loadgen",
        "2",
        "1",
        "2",
        "--connections",
        "2",
        "--frames",
        "16",
        "--batch",
        "4",
        "--window",
        "2",
        "--seed",
        "7",
    ]);
    assert!(out.contains("2 connections × 16 frames × 4 pairs"));
    assert!(out.contains("requests       128"));
    assert!(out.contains("rejects        0"));
    assert!(out.contains("lookups/s over TCP"));
    assert!(out.contains("digest         0x"));
}

#[test]
fn loadgen_json_digest_is_seed_stable() {
    let args = [
        "--json",
        "loadgen",
        "abccc:2,1,2",
        "--connections",
        "2",
        "--frames",
        "16",
        "--batch",
        "4",
        "--window",
        "2",
        "--seed",
        "7",
    ];
    let digest_of = |out: String| -> String {
        out.lines()
            .find(|l| l.contains("\"digest\""))
            .expect("digest field")
            .to_string()
    };
    let a = digest_of(stdout(&args));
    let b = digest_of(stdout(&args));
    assert_eq!(a, b, "fixed seed must reproduce the digest");
    assert!(stdout(&args).contains("\"drained_connections\": 2"));
}

#[test]
fn loadgen_accepts_abccc_specs_only() {
    let out = cli(&["loadgen", "fattree:4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires an ABCCC topology"));
}

#[test]
fn serve_binds_ephemeral_port_and_drains_on_stdin_eof() {
    // `--port 0` binds an ephemeral port; with stdin already at EOF the
    // server prints the bound address, drains and exits 0.
    let out = cli(&["serve", "abccc:2,1,2", "--port", "0", "--shards", "3"]);
    assert!(out.status.success(), "serve must exit 0 on stdin EOF");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("listening on 127.0.0.1:"));
    // Shard counts round to the next power of two, visible in the banner.
    assert!(text.contains("shards 4"));
    assert!(text.contains("drained 0 connection(s) at epoch 0"));
}

#[test]
fn serve_rejects_json_flag() {
    let out = cli(&["--json", "serve", "2", "1", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--json is not supported"));
}
