//! `abccc-cli` — build, inspect, route and simulate ABCCC and baseline
//! topologies from the command line.
//!
//! ```text
//! abccc-cli props    abccc 4 2 3            # structural properties
//! abccc-cli route    abccc 4 2 3 0 127      # one-to-one route with addresses
//! abccc-cli parallel abccc 4 2 3 0 127      # disjoint parallel paths
//! abccc-cli simulate abccc 4 2 3 --pattern permutation --seed 7
//! abccc-cli expand   4 2 3 --steps 3        # expansion plan
//! abccc-cli capex    abccc 4 2 3            # cost breakdown
//! abccc-cli experiments run --all --preset tiny   # full paper sweep, small grids
//! ```
//!
//! Families: `abccc n k h`, `bccc n k`, `bcube n k`, `dcell n k`,
//! `fattree p`, `ghc n d` — or any one-token spec such as `abccc:4,2,3`,
//! `jellyfish:seed=7,r=4,v=64`, `spaceshuffle:seed=7,d=3,v=64`.
//!
//! Global flags (any command): `--trace` prints a telemetry summary to
//! stderr on exit; `--metrics-out FILE` writes the raw span/metric events
//! as JSON lines; `--trace-out FILE` writes a Chrome Trace Event JSON
//! (open in `chrome://tracing` or Perfetto); `--flame-out FILE` writes
//! folded flamegraph stacks. Metric-producing subcommands additionally
//! accept `--json` to emit their report as JSON instead of the aligned
//! table.

use abccc::{Abccc, AbcccParams};
use dcn_baselines::*;
use netgraph::{NodeId, Topology};
use serde::{Serialize, Value};
use std::process::ExitCode;

/// Global flags stripped from the argument list before dispatch.
struct CliOptions {
    /// Print a human-readable telemetry summary to stderr on exit.
    trace: bool,
    /// Write span/metric events as JSON lines to this path on exit.
    metrics_out: Option<String>,
    /// Write a Chrome Trace Event JSON to this path on exit.
    trace_out: Option<String>,
    /// Write folded flamegraph stacks to this path on exit.
    flame_out: Option<String>,
    /// Subcommand output as JSON instead of an aligned table.
    json: bool,
}

impl CliOptions {
    fn extract(args: &mut Vec<String>) -> CliOptions {
        // For `experiments` the `--json` flag takes a directory operand
        // and is parsed by the subcommand itself; everywhere else it is a
        // boolean toggling JSON report output.
        let experiments = args.first().is_some_and(|a| a == "experiments");
        CliOptions {
            trace: take_flag(args, "--trace"),
            metrics_out: take_flag_value(args, "--metrics-out"),
            trace_out: take_flag_value(args, "--trace-out"),
            flame_out: take_flag_value(args, "--flame-out"),
            json: !experiments && take_flag(args, "--json"),
        }
    }

    /// Whether any global flag needs telemetry recording turned on.
    fn wants_telemetry(&self) -> bool {
        self.trace
            || self.metrics_out.is_some()
            || self.trace_out.is_some()
            || self.flame_out.is_some()
    }
}

/// Removes `flag` from `args`; returns whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Removes `flag` and its value from `args`; returns the value.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    args.remove(i);
    Some(args.remove(i))
}

/// Drains recorded telemetry into whichever sinks the flags selected.
fn finish_telemetry(opts: &CliOptions) {
    if !dcn_telemetry::enabled() {
        return;
    }
    let spans = dcn_telemetry::drain_spans();
    let metrics = dcn_telemetry::registry().snapshot();
    if opts.trace {
        eprint!("{}", dcn_telemetry::render_summary(&spans, &metrics));
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = dcn_telemetry::write_jsonl(path, &spans, &metrics) {
            eprintln!("warning: writing {path}: {e}");
        }
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, dcn_telemetry::chrome_trace_json(&spans)) {
            eprintln!("warning: writing {path}: {e}");
        }
    }
    if let Some(path) = &opts.flame_out {
        if let Err(e) = std::fs::write(path, dcn_telemetry::folded_stacks(&spans)) {
            eprintln!("warning: writing {path}: {e}");
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = CliOptions::extract(&mut args);
    if opts.wants_telemetry() {
        dcn_telemetry::set_enabled(true);
    }
    // Exiting quietly when stdout closes early (`abccc-cli … | head`) is
    // friendlier than the default broken-pipe panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("Broken pipe"));
        if !broken_pipe {
            default_hook(info);
        }
    }));
    let outcome = std::panic::catch_unwind(|| run(&args, &opts));
    match outcome {
        Ok(Ok(code)) => {
            finish_telemetry(&opts);
            code
        }
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.contains("Broken pipe") {
                ExitCode::SUCCESS
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

const USAGE: &str = "usage:
  abccc-cli props    <family…>              structural properties (+diameter for small nets)
  abccc-cli route    <family…> <src> <dst>  one-to-one route (native algorithm)
  abccc-cli parallel <family…> <src> <dst>  vertex-disjoint parallel paths (abccc/bccc only)
  abccc-cli simulate <family…> [--pattern permutation|bisection|alltoall] [--seed N]
  abccc-cli expand   <n> <k> <h> [--steps N]  ABCCC expansion plan
  abccc-cli capex    <family…>              CAPEX breakdown (default cost model)
  abccc-cli dot      <family…> [<src> <dst>]  Graphviz DOT (route highlighted if given)
  abccc-cli broadcast <n> <k> <h> <src>      one-to-all tree statistics
  abccc-cli svg      <family…> [<src> <dst>] [--out FILE]  SVG rendering
  abccc-cli trace    <family…> --file TRACE.csv            replay a CSV flow trace
  abccc-cli design   <target-servers> [--objective cost|latency|bandwidth]
  abccc-cli resilience <spec>|<n> <k> <h> [--scenario uniform|groups|level|flapping]
      [--rate R] [--link-rate R] [--groups N] [--level N] [--steps N]
      [--router resilient|digit|vlb] [--no-bfs] [--pattern random|permutation|convergent]
      [--pairs N] [--trials N] [--seed N] [--threads N] [--no-throughput]
                                             seeded fault campaign with degradation
                                             report (any family; non-ABCCC specs run
                                             on their native routing plane)
  abccc-cli fib compile <spec>|<n> <k> <h> [--layout dense|hier]
                                             compile the forwarding table, print stats
  abccc-cli fib query   <spec>|<n> <k> <h> <src> <dst> [--shards N] [--layout dense|hier]
      [--fail-rate R] [--fail-seed S]        answer one query from the compiled table
  abccc-cli fib bench   <spec>|<n> <k> <h> [--queries N] [--seed N] [--shards N]
      [--fail-rate R] [--layout dense|hier] [--digest FILE]
                                             batched route-service throughput; --digest
                                             writes a deterministic result digest (JSON)
  abccc-cli serve  <spec>|<n> <k> <h> [--port P] [--shards N] [--layout dense|hier]
      [--max-inflight N] [--max-batch N]      serve the compiled FIB over TCP
                                             (127.0.0.1, --port 0 = ephemeral; prints
                                             the bound address, runs until stdin EOF,
                                             then drains and exits 0)
  abccc-cli loadgen <spec>|<n> <k> <h> [--connections N] [--frames N] [--batch N]
      [--window N] [--seed N] [--shards N] [--layout dense|hier]
                                             loopback load generator: spawn a server,
                                             drive it, report throughput + RTT
                                             quantiles + the deterministic digest
  abccc-cli topo stats  <family…> [--estimate [--samples N] [--seed S] [--trials T]]
                                             graph metrics; --estimate uses seeded
                                             sampling (diameter lower bound, APL ± CI,
                                             bisection upper bound) at any scale
  abccc-cli experiments list                 index of registered paper experiments
  abccc-cli sim list                         production scenario catalog (unified engine)
  abccc-cli sim run <scenario> <family…> [--seed N]
                                             run one workload scenario through the
                                             unified traffic engine; reports the FCT
                                             distribution, goodput, and fault impact
  abccc-cli experiments run <name…> | --all [--preset tiny|paper|scale]
      [--json DIR] [--threads N]             run experiments through the sweep engine
                                             (--json here takes a directory for rows +
                                             manifest artifacts)
  abccc-cli perf record [<name…> | --all] [--preset tiny|paper|scale] [--runs N]
      [--threads N] [--baselines DIR]        run experiments N times, store the
                                             median perf figures as baselines
                                             (default: all, tiny, 3 runs,
                                             bench_results/baselines)
  abccc-cli perf diff   [<name…> | --all] [--preset tiny|paper|scale] [--runs N]
      [--threads N] [--baselines DIR] [--rel R]
                                             re-measure and compare against stored
                                             baselines; exits nonzero on regression
                                             (noise-aware: relative + absolute gates)
  abccc-cli perf trace-stat FILE             validate a --trace-out Chrome trace and
                                             print its span/lane/root counts

families: abccc n k h | bccc n k | bcube n k | dcell n k | fattree p | ghc n d
  every <family…> also accepts one-token specs — `abccc:4,2,3`, `fattree:6`,
  `jellyfish:seed=7,r=4,v=64`, `spaceshuffle:seed=7,d=3,v=64` (the canonical
  round-trip form printed by `topo stats`); jellyfish/spaceshuffle are spec-only

global flags:
  --trace              print a telemetry summary (spans + counters) to stderr
  --metrics-out FILE   write raw telemetry events as JSON lines to FILE
  --trace-out FILE     write a Chrome Trace Event JSON (chrome://tracing, Perfetto)
  --flame-out FILE     write folded flamegraph stacks (self-time weighted)
  --json               JSON report instead of a table
                       (props/simulate/sim/capex/trace/broadcast/resilience/fib/topo/perf/loadgen)";

type DynTopo = Box<dyn Topology>;

fn parse_u32(s: &str, what: &str) -> Result<u32, String> {
    s.parse()
        .map_err(|_| format!("{what}: expected a number, got `{s}`"))
}

/// Whether an argument is a one-token topology spec (`abccc:4,2,3`,
/// `jellyfish:v=64,r=4`, or the label form `ABCCC(4,2,3)`) rather than a
/// legacy `family n k …` head.
fn is_topology_spec(arg: &str) -> bool {
    arg.contains(':') || arg.contains('(')
}

/// Parses either a one-token canonical spec (any registered family,
/// including `jellyfish:…` and `spaceshuffle:…`) or the legacy
/// `family params…` form, returning the topology plus how many args it
/// consumed.
fn parse_topology(args: &[String]) -> Result<(DynTopo, usize), String> {
    let family = args.first().ok_or("missing topology family")?;
    if is_topology_spec(family) {
        let topo: DynTopo = family::build_spec(family).map_err(|e| e.to_string())?;
        return Ok((topo, 1));
    }
    let need = |n: usize| -> Result<Vec<u32>, String> {
        if args.len() < 1 + n {
            return Err(format!("{family} needs {n} numeric parameter(s)"));
        }
        args[1..1 + n]
            .iter()
            .map(|s| parse_u32(s, "parameter"))
            .collect()
    };
    let err = |e: netgraph::NetworkError| e.to_string();
    match family.as_str() {
        "abccc" => {
            let v = need(3)?;
            let p = AbcccParams::new(v[0], v[1], v[2]).map_err(err)?;
            Ok((Box::new(Abccc::new(p).map_err(err)?), 4))
        }
        "bccc" => {
            let v = need(2)?;
            let p = BcccParams::new(v[0], v[1]).map_err(err)?;
            Ok((Box::new(Bccc::new(p).map_err(err)?), 3))
        }
        "bcube" => {
            let v = need(2)?;
            let p = BCubeParams::new(v[0], v[1]).map_err(err)?;
            Ok((Box::new(BCube::new(p).map_err(err)?), 3))
        }
        "dcell" => {
            let v = need(2)?;
            let p = DCellParams::new(v[0], v[1]).map_err(err)?;
            Ok((Box::new(DCell::new(p).map_err(err)?), 3))
        }
        "fattree" => {
            let v = need(1)?;
            let p = FatTreeParams::new(v[0]).map_err(err)?;
            Ok((Box::new(FatTree::new(p).map_err(err)?), 2))
        }
        "ghc" => {
            let v = need(2)?;
            let p = HypercubeParams::new(v[0], v[1]).map_err(err)?;
            Ok((Box::new(Hypercube::new(p).map_err(err)?), 3))
        }
        other => Err(format!(
            "unknown family `{other}` (try a spec like `{other}:…` — families: {})",
            family::families()
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String], opts: &CliOptions) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    let json = opts.json;
    if json
        && !matches!(
            cmd.as_str(),
            "props"
                | "simulate"
                | "sim"
                | "capex"
                | "trace"
                | "broadcast"
                | "resilience"
                | "fib"
                | "topo"
                | "perf"
                | "loadgen"
        )
    {
        return Err(format!("--json is not supported for `{cmd}`"));
    }
    // Most subcommands either succeed or error; only `perf diff` reports
    // a legitimate non-success outcome (a regression verdict) without an
    // error.
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "props" => done(props(rest, json)),
        "route" => done(route(rest)),
        "parallel" => done(parallel(rest)),
        "simulate" => done(simulate(rest, json)),
        "sim" => done(sim_cmd(rest, json)),
        "expand" => done(expand(rest)),
        "capex" => done(capex(rest, json)),
        "dot" => done(dot(rest)),
        "svg" => done(svg_cmd(rest)),
        "trace" => done(trace_cmd(rest, json)),
        "design" => done(design_cmd(rest)),
        "broadcast" => done(broadcast_cmd(rest, json)),
        "resilience" => done(resilience_cmd(rest, json)),
        "fib" => done(fib_cmd(rest, json)),
        "serve" => done(serve_cmd(rest)),
        "loadgen" => done(loadgen_cmd(rest, json)),
        "topo" => done(topo_cmd(rest, json)),
        "experiments" => done(experiments_cmd(rest)),
        "perf" => perf_cmd(rest, json),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Renders a value as pretty JSON on stdout.
fn print_json(v: &Value) -> Result<(), String> {
    let text = serde_json::to_string_pretty(v).map_err(|e| e.to_string())?;
    println!("{text}");
    Ok(())
}

/// Appends extra entries to a serialized struct's JSON object.
fn with_entries(mut v: Value, extra: Vec<(&str, Value)>) -> Value {
    if let Value::Map(ref mut m) = v {
        for (k, val) in extra {
            m.push((k.to_string(), val));
        }
    }
    v
}

fn props(args: &[String], json: bool) -> Result<(), String> {
    let (topo, _) = parse_topology(args)?;
    let small = topo.network().server_count() <= 2048;
    let stats = if small {
        dcn_metrics::TopologyStats::measure(topo.as_ref())
    } else {
        dcn_metrics::TopologyStats::quick(topo.as_ref())
    };
    if json {
        let bisection = if small {
            Value::U64(dcn_metrics::bisection::exact_bisection_by_id(
                topo.network(),
            ))
        } else {
            Value::Null
        };
        return print_json(&with_entries(
            stats.to_value(),
            vec![("exact_bisection_links", bisection)],
        ));
    }
    println!("{}", stats.name);
    println!("  servers           {}", stats.servers);
    println!("  switches          {}", stats.switches);
    for (radix, count) in &stats.switch_radix_histogram {
        println!("    radix {radix:<4}      × {count}");
    }
    println!("  cables            {}", stats.wires);
    println!("  NIC ports/server  ≤ {}", stats.max_server_ports);
    match stats.diameter_server_hops {
        Some(d) => println!("  diameter          {d} server hops (exact BFS)"),
        None => println!("  diameter          (skipped: network too large for exact BFS)"),
    }
    if let Some(apl) = stats.avg_path_length {
        println!("  avg path length   {apl:.3}");
    }
    if small {
        let b = dcn_metrics::bisection::exact_bisection_by_id(topo.network());
        println!("  bisection         {b} links (exact min-cut)");
    }
    Ok(())
}

fn endpoints(topo: &dyn Topology, args: &[String], at: usize) -> Result<(NodeId, NodeId), String> {
    let n = topo.network().server_count() as u32;
    let s = parse_u32(args.get(at).ok_or("missing <src>")?, "src")?;
    let d = parse_u32(args.get(at + 1).ok_or("missing <dst>")?, "dst")?;
    if s >= n || d >= n {
        return Err(format!("server ids must be < {n}"));
    }
    Ok((NodeId(s), NodeId(d)))
}

fn route(args: &[String]) -> Result<(), String> {
    let (topo, used) = parse_topology(args)?;
    let (src, dst) = endpoints(topo.as_ref(), args, used)?;
    let r = topo.route(src, dst).map_err(|e| e.to_string())?;
    r.validate(topo.network(), None)?;
    println!(
        "{}: {} → {} in {} server hops ({} links)",
        topo.name(),
        src,
        dst,
        r.server_hops(topo.network()),
        r.link_hops()
    );
    for node in r.nodes() {
        let kind = topo.network().kind(*node);
        println!("  {kind:<6} {node}");
    }
    Ok(())
}

fn parallel(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or("missing topology family")?.clone();
    if family != "abccc" && family != "bccc" {
        return Err("parallel paths are implemented for abccc/bccc".into());
    }
    let (topo, used) = parse_topology(args)?;
    let (src, dst) = endpoints(topo.as_ref(), args, used)?;
    if src == dst {
        return Err("src and dst must differ".into());
    }
    // Reconstruct the ABCCC parameterization for the native constructor.
    let v: Vec<u32> = args[1..used]
        .iter()
        .map(|s| parse_u32(s, "parameter"))
        .collect::<Result<_, _>>()?;
    let p = if family == "abccc" {
        AbcccParams::new(v[0], v[1], v[2]).map_err(|e| e.to_string())?
    } else {
        AbcccParams::new(v[0], v[1], 2).map_err(|e| e.to_string())?
    };
    let routes = abccc::parallel::parallel_routes(
        &p,
        abccc::ServerAddr::from_node_id(&p, src),
        abccc::ServerAddr::from_node_id(&p, dst),
        usize::MAX,
    );
    let exact = netgraph::paths::vertex_disjoint_paths(topo.network(), src, dst, usize::MAX, None);
    println!(
        "{}: {} internally disjoint paths constructed (exact maximum: {})",
        topo.name(),
        routes.len(),
        exact.len()
    );
    for (i, r) in routes.iter().enumerate() {
        println!("  path {i}: {} hops", abccc::routing::hops(r));
    }
    Ok(())
}

fn simulate(args: &[String], json: bool) -> Result<(), String> {
    let (topo, _) = parse_topology(args)?;
    let pattern = flag_value(args, "--pattern").unwrap_or_else(|| "permutation".into());
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| "--seed expects a number"))
        .transpose()?
        .unwrap_or(1);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = topo.network().server_count();
    let pairs = match pattern.as_str() {
        "permutation" => dcn_workloads::traffic::random_permutation(n, &mut rng),
        "bisection" => dcn_workloads::traffic::bisection_pairs(n, &mut rng),
        "alltoall" => {
            if n > 256 {
                return Err("alltoall is quadratic; use a network with ≤ 256 servers".into());
            }
            dcn_workloads::traffic::all_to_all(n)
        }
        other => return Err(format!("unknown pattern `{other}`")),
    };
    let report = dcn_sim::FlowSim::new(topo.as_ref())
        .run(&pairs)
        .map_err(|e| e.to_string())?;
    if json {
        return print_json(&with_entries(
            report.to_value(),
            vec![
                ("pattern", Value::Str(pattern.clone())),
                ("seed", Value::U64(seed)),
            ],
        ));
    }
    println!("{} under `{pattern}` (seed {seed})", report.topology);
    println!("  flows            {}", report.flows);
    println!("  aggregate        {:.2} Gbps", report.aggregate_rate);
    println!("  per-flow mean    {:.4} Gbps", report.mean_rate);
    println!("  per-flow min     {:.4} Gbps", report.min_rate);
    println!("  ABT              {:.2} Gbps", report.abt);
    println!("  mean hops        {:.2}", report.mean_hops);
    Ok(())
}

/// One-line blurbs for the scenario catalog, display order.
const SCENARIO_BLURBS: [(&str, &str); 5] = [
    (
        "all_reduce",
        "ring all-reduce collective (reduce-scatter + all-gather phases)",
    ),
    (
        "all_to_all",
        "shuffle: every ordered participant pair exchanges one chunk",
    ),
    (
        "incast",
        "packet-level fan-in microburst onto one target's last hop",
    ),
    (
        "storage_rebuild",
        "reconstruction storm with a mid-flow server fault",
    ),
    (
        "diurnal",
        "sinusoidal load, 10% elephants, flash crowd at the peak",
    ),
];

fn sim_cmd(args: &[String], json: bool) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for (name, blurb) in SCENARIO_BLURBS {
                println!("{name:<16} {blurb}");
            }
            Ok(())
        }
        Some("run") => sim_run(&args[1..], json),
        _ => Err("sim expects `list` or `run <scenario> <family…>`".into()),
    }
}

fn sim_run(args: &[String], json: bool) -> Result<(), String> {
    let name = args
        .first()
        .ok_or("missing scenario (try `abccc-cli sim list`)")?
        .clone();
    let head = args.get(1).ok_or("missing topology spec")?;
    // The engine's batch runner shares the topology across threads, so
    // build through the family registry (Send + Sync) rather than
    // `parse_topology`; the legacy `family n k …` tail folds into a
    // one-token spec.
    let topo: Box<dyn Topology + Send + Sync> = if is_topology_spec(head) {
        family::build_spec(head).map_err(|e| e.to_string())?
    } else {
        let params: Vec<String> = args[2..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        family::build_spec(&format!("{head}:{}", params.join(","))).map_err(|e| e.to_string())?
    };
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| "--seed expects a number"))
        .transpose()?
        .unwrap_or(1);
    let servers = topo.network().server_count();
    let scenario = dcn_workloads::scenarios::by_name(&name, servers, seed)
        .ok_or_else(|| format!("unknown scenario `{name}` (see `abccc-cli sim list`)"))?;
    let report = dcn_sim::TrafficEngine::new(topo.as_ref())
        .run(&scenario)
        .map_err(|e| e.to_string())?;
    if json {
        return print_json(&with_entries(
            report.to_value(),
            vec![("seed", Value::U64(seed))],
        ));
    }
    println!(
        "{} `{}` ({}, plane {}, seed {seed})",
        report.topology, report.scenario, report.fidelity, report.plane
    );
    println!(
        "  flows            {} ({} completed, {} unroutable)",
        report.flows, report.completed, report.unroutable
    );
    println!("  phases           {}", report.phases);
    println!("  faults fired     {}", report.faults_fired);
    println!(
        "  bytes            {} offered = {} delivered + {} dropped + {} killed",
        report.bytes_offered, report.bytes_delivered, report.bytes_dropped, report.bytes_killed
    );
    println!(
        "  makespan         {:.3} ms",
        report.makespan_ns as f64 / 1e6
    );
    println!("  goodput          {:.3} Gbps", report.goodput_gbps);
    println!(
        "  fct p50/p99/p999 {:.1} / {:.1} / {:.1} µs",
        report.fct.p50_ns as f64 / 1000.0,
        report.fct.p99_ns as f64 / 1000.0,
        report.fct.p999_ns as f64 / 1000.0
    );
    Ok(())
}

fn expand(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err("expand needs <n> <k> <h>".into());
    }
    let n = parse_u32(&args[0], "n")?;
    let k = parse_u32(&args[1], "k")?;
    let h = parse_u32(&args[2], "h")?;
    let steps: u32 = flag_value(args, "--steps")
        .map(|s| s.parse().map_err(|_| "--steps expects a number"))
        .transpose()?
        .unwrap_or(1);
    let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
    let plan = abccc::ExpansionStep::schedule(p, steps).map_err(|e| e.to_string())?;
    for s in &plan {
        println!("{} → {}", s.from, s.to);
        println!(
            "  servers            {} → {}",
            s.from.server_count(),
            s.to.server_count()
        );
        println!("  + servers          {}", s.new_servers);
        println!("  + crossbars        {}", s.new_crossbar_switches);
        println!("  + level switches   {}", s.new_level_switches);
        println!("  + cables           {}", s.new_cables);
        println!(
            "  legacy NICs added  {} (cables into spare ports: {})",
            s.legacy_nics_added, s.legacy_server_ports_newly_used
        );
        assert!(s.legacy_untouched());
    }
    println!("(every step leaves legacy hardware untouched)");
    Ok(())
}

fn dot(args: &[String]) -> Result<(), String> {
    let (topo, used) = parse_topology(args)?;
    if topo.network().node_count() > 4096 {
        return Err("network too large to render usefully (> 4096 nodes)".into());
    }
    let mut opts = netgraph::dot::DotOptions {
        name: topo.name().replace(['(', ')', ','], "_"),
        ..Default::default()
    };
    if args.len() >= used + 2 {
        let (src, dst) = endpoints(topo.as_ref(), args, used)?;
        opts.highlight = vec![topo.route(src, dst).map_err(|e| e.to_string())?];
    }
    print!("{}", netgraph::dot::to_dot(topo.network(), &opts));
    Ok(())
}

fn svg_cmd(args: &[String]) -> Result<(), String> {
    let (topo, used) = parse_topology(args)?;
    if topo.network().node_count() > 2048 {
        return Err("network too large to render usefully (> 2048 nodes)".into());
    }
    let mut opts = netgraph::svg::SvgOptions::default();
    if args.len() > used + 1 && !args[used].starts_with("--") {
        let (src, dst) = endpoints(topo.as_ref(), args, used)?;
        opts.highlight = vec![topo.route(src, dst).map_err(|e| e.to_string())?];
    }
    let svg = netgraph::svg::to_svg(topo.network(), &opts);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(&path, &svg).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path} ({} bytes)", svg.len());
        }
        None => print!("{svg}"),
    }
    Ok(())
}

fn trace_cmd(args: &[String], json: bool) -> Result<(), String> {
    let (topo, _) = parse_topology(args)?;
    let path = flag_value(args, "--file").ok_or("trace needs --file TRACE.csv")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let flows = dcn_workloads::trace::parse_trace(&text, topo.network().server_count() as u64)
        .map_err(|e| e.to_string())?;
    if flows.is_empty() {
        return Err("trace contains no flows".into());
    }
    let pairs: Vec<_> = flows
        .iter()
        .map(dcn_workloads::trace::TraceFlow::pair)
        .collect();
    let report = dcn_sim::FlowSim::new(topo.as_ref())
        .run(&pairs)
        .map_err(|e| e.to_string())?;
    if json {
        return print_json(&with_entries(
            report.to_value(),
            vec![
                ("trace_file", Value::Str(path.clone())),
                ("fairness_index", Value::F64(report.fairness_index())),
            ],
        ));
    }
    println!(
        "{}: replayed {} flows from {path}",
        report.topology, report.flows
    );
    println!("  aggregate     {:.2} Gbps", report.aggregate_rate);
    println!("  per-flow mean {:.4} Gbps", report.mean_rate);
    println!("  per-flow min  {:.4} Gbps", report.min_rate);
    println!("  fairness      {:.3}", report.fairness_index());
    println!("  mean hops     {:.2}", report.mean_hops);
    Ok(())
}

fn broadcast_cmd(args: &[String], json: bool) -> Result<(), String> {
    if args.len() < 4 {
        return Err("broadcast needs <n> <k> <h> <src>".into());
    }
    let n = parse_u32(&args[0], "n")?;
    let k = parse_u32(&args[1], "k")?;
    let h = parse_u32(&args[2], "h")?;
    let src = parse_u32(&args[3], "src")?;
    let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
    if u64::from(src) >= p.server_count() {
        return Err(format!("src must be < {}", p.server_count()));
    }
    let tree = abccc::broadcast::one_to_all(&p, NodeId(src)).map_err(|e| e.to_string())?;
    tree.validate(&p)?;
    if json {
        return print_json(&Value::Map(
            [
                ("topology", Value::Str(p.to_string())),
                ("src", Value::U64(u64::from(src))),
                ("servers_covered", Value::U64(tree.member_count() as u64)),
                ("tree_depth_hops", Value::U64(tree.depth() as u64)),
                ("messages_sent", Value::U64(tree.member_count() as u64 - 1)),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        ));
    }
    println!("{p}: one-to-all from server {src}");
    println!("  servers covered  {}", tree.member_count());
    println!("  tree depth       {} hops", tree.depth());
    println!("  messages sent    {}", tree.member_count() - 1);
    let unicast: u64 = (0..p.server_count())
        .map(|d| {
            abccc::routing::distance(
                &p,
                abccc::ServerAddr::from_node_id(&p, NodeId(src)),
                abccc::ServerAddr::from_node_id(&p, NodeId(d as u32)),
            )
        })
        .sum();
    println!("  unicast cost     {unicast} messages (for comparison)");
    Ok(())
}

fn design_cmd(args: &[String]) -> Result<(), String> {
    let target: u64 = args
        .first()
        .ok_or("design needs <target-servers>")?
        .parse()
        .map_err(|_| "target-servers must be a number".to_string())?;
    let objective = match flag_value(args, "--objective").as_deref() {
        None | Some("cost") => dcn_metrics::design::Objective::Cost,
        Some("latency") => dcn_metrics::design::Objective::Latency,
        Some("bandwidth") => dcn_metrics::design::Objective::Bandwidth,
        Some(other) => return Err(format!("unknown objective `{other}`")),
    };
    let cost = dcn_metrics::CostModel::default();
    let cands = dcn_metrics::design::recommend(target, &[4, 8, 16, 24, 48], 6, &cost, objective);
    println!("candidates reaching ≥ {target} servers (best first):");
    println!(
        "{:<16} {:>9} {:>9} {:>6} {:>10} {:>12}",
        "config", "servers", "diameter", "ports", "$/server", "bisect/srv"
    );
    for c in cands.iter().take(12) {
        println!(
            "{:<16} {:>9} {:>9} {:>6} {:>10.2} {:>12}",
            c.params.to_string(),
            c.servers,
            c.diameter,
            c.ports,
            c.capex_per_server,
            c.bisection_per_server
                .map_or("—".to_string(), |b| format!("{b:.4}")),
        );
    }
    Ok(())
}

fn resilience_cmd(args: &[String], json: bool) -> Result<(), String> {
    use dcn_resilience::{CampaignConfig, PairSampling, RouterSpec, ScenarioKind};
    // A one-token spec runs the campaign on any family (native routing
    // plane for non-ABCCC); the legacy `<n> <k> <h>` form stays ABCCC.
    let topo: Box<dyn Topology + Send + Sync> = match args.first().map(|a| is_topology_spec(a)) {
        Some(true) => family::build_spec(&args[0]).map_err(|e| e.to_string())?,
        _ => {
            if args.len() < 3 {
                return Err("resilience needs a topology spec or <n> <k> <h>".into());
            }
            let n = parse_u32(&args[0], "n")?;
            let k = parse_u32(&args[1], "k")?;
            let h = parse_u32(&args[2], "h")?;
            let p = AbcccParams::new(n, k, h).map_err(|e| e.to_string())?;
            Box::new(Abccc::new(p).map_err(|e| e.to_string())?)
        }
    };

    let num = |flag: &str, default: u64| -> Result<u64, String> {
        flag_value(args, flag)
            .map(|s| s.parse().map_err(|_| format!("{flag} expects a number")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let fnum = |flag: &str, default: f64| -> Result<f64, String> {
        flag_value(args, flag)
            .map(|s| s.parse().map_err(|_| format!("{flag} expects a number")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };

    let rate = fnum("--rate", 0.05)?;
    let scenario = match flag_value(args, "--scenario")
        .as_deref()
        .unwrap_or("uniform")
    {
        "uniform" => ScenarioKind::Uniform {
            server_rate: rate,
            switch_rate: rate,
            link_rate: fnum("--link-rate", 0.0)?,
        },
        "groups" => ScenarioKind::CrossbarGroups {
            groups: num("--groups", 1)? as usize,
        },
        "level" => ScenarioKind::LevelSwitches {
            level: num("--level", 0)? as u32,
        },
        "flapping" => ScenarioKind::FlappingLinks {
            rate,
            steps: num("--steps", 4)? as usize,
        },
        other => return Err(format!("unknown scenario `{other}`")),
    };
    let router = match flag_value(args, "--router")
        .as_deref()
        .unwrap_or("resilient")
    {
        "resilient" => RouterSpec::Resilient(abccc::RetryBudget {
            bfs_fallback: !args.iter().any(|a| a == "--no-bfs"),
            ..abccc::RetryBudget::default()
        }),
        "digit" => RouterSpec::Digit(abccc::PermStrategy::DestinationAware),
        "vlb" => RouterSpec::Vlb {
            seed: num("--seed", 0)?,
        },
        other => return Err(format!("unknown router `{other}`")),
    };
    let sampling = match flag_value(args, "--pattern").as_deref().unwrap_or("random") {
        "random" => PairSampling::UniformRandom {
            pairs: num("--pairs", 64)? as usize,
        },
        "permutation" => PairSampling::Permutation,
        "convergent" => PairSampling::Convergent,
        other => return Err(format!("unknown pattern `{other}`")),
    };

    let report = CampaignConfig::new()
        .scenario(scenario)
        .router(router)
        .sampling(sampling)
        .trials(num("--trials", 8)? as usize)
        .seed(num("--seed", 0)?)
        .threads(num("--threads", 0)? as usize)
        .measure_throughput(!args.iter().any(|a| a == "--no-throughput"))
        .run_on(topo.as_ref())
        .map_err(|e| e.to_string())?;

    if json {
        return print_json(&report.to_value());
    }
    let s = &report.summary;
    println!(
        "{} — `{}` campaign, router `{}`, {} trials (seed {})",
        report.topology, report.scenario, report.router, s.trials, report.seed
    );
    println!("  connectivity fraction  {:.4}", s.connectivity_fraction);
    println!("  route completion       {:.4}", s.route_completion);
    println!("  mean stretch           {:.3}", s.mean_stretch);
    println!("  max stretch            {:.3}", s.max_stretch);
    println!("  throughput retention   {:.4}", s.throughput_retention);
    println!(
        "  routed / unreachable / gave-up   {} / {} / {}",
        s.routed, s.unreachable, s.gave_up
    );
    let t = &s.tier_counts;
    println!(
        "  tiers  primary {}  deterministic {}  random-perm {}  proxy {}  bfs {}",
        t.primary, t.deterministic, t.random_perm, t.proxy, t.bfs
    );
    println!(
        "  attempts {}  backoff units {}",
        s.attempts_total, s.backoff_units_total
    );
    println!("  per trial:");
    for tr in &report.trials {
        println!(
            "    #{:<3} failed n/l {:>6.1}/{:>6.1}  conn {:.3}  completion {:.3}  stretch {:.2}  retention {:.3}",
            tr.trial,
            tr.failed_nodes,
            tr.failed_links,
            tr.connectivity_fraction,
            tr.route_completion,
            tr.mean_stretch,
            tr.throughput_retention,
        );
    }
    Ok(())
}

fn fib_cmd(args: &[String], json: bool) -> Result<(), String> {
    use dcn_fib::RouteService;
    use netgraph::FaultScenario;

    let sub = args
        .first()
        .ok_or("fib needs `compile`, `query` or `bench`")?;
    let rest = &args[1..];
    // Compiled FIBs are digit-indexed, so fib only runs on ABCCC: accept
    // an `abccc:n,k,h` spec or the legacy `<n> <k> <h>` form.
    let p = match rest.first().map(|a| is_topology_spec(a)) {
        Some(true) => {
            let (fam, params) = family::parse_spec(&rest[0]).map_err(|e| e.to_string())?;
            if fam.name() != "abccc" {
                return Err(format!(
                    "fib {sub} requires an ABCCC topology, got `{}`",
                    fam.name()
                ));
            }
            params.parse::<AbcccParams>().map_err(|e| e.to_string())?
        }
        _ => {
            if rest.len() < 3 {
                return Err(format!("fib {sub} needs a topology spec or <n> <k> <h>"));
            }
            let n = parse_u32(&rest[0], "n")?;
            let k = parse_u32(&rest[1], "k")?;
            let h = parse_u32(&rest[2], "h")?;
            AbcccParams::new(n, k, h).map_err(|e| e.to_string())?
        }
    };
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        flag_value(rest, flag)
            .map(|s| s.parse().map_err(|_| format!("{flag} expects a number")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let fnum = |flag: &str, default: f64| -> Result<f64, String> {
        flag_value(rest, flag)
            .map(|s| s.parse().map_err(|_| format!("{flag} expects a number")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let shards = num("--shards", 8)? as usize;
    let fail_rate = fnum("--fail-rate", 0.0)?;
    let fail_seed = num("--fail-seed", 0)?;
    let layout = match flag_value(rest, "--layout") {
        None => dcn_fib::FibLayout::Dense,
        Some(s) => dcn_fib::FibLayout::parse(&s)
            .ok_or_else(|| format!("unknown layout `{s}` (dense|hier)"))?,
    };

    let build_service = || -> Result<(RouteService, f64), String> {
        let topo = Abccc::new(p).map_err(|e| e.to_string())?;
        let t0 = std::time::Instant::now();
        let mut svc =
            RouteService::compile_with_layout(topo, layout, shards).map_err(|e| e.to_string())?;
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
        if fail_rate > 0.0 {
            let mask = FaultScenario::seeded(fail_seed)
                .fail_servers_frac(fail_rate)
                .fail_switches_frac(fail_rate)
                .build(svc.topo().network());
            svc.apply_mask(mask);
        }
        Ok((svc, compile_ms))
    };

    match sub.as_str() {
        "compile" => {
            let (svc, compile_ms) = build_service()?;
            let fib = svc.table();
            if json {
                return print_json(&Value::Map(
                    [
                        ("topology", Value::Str(p.to_string())),
                        ("servers", Value::U64(u64::from(fib.servers()))),
                        ("strategy", Value::Str(fib.strategy().label().to_string())),
                        ("layout", Value::Str(fib.layout().label().to_string())),
                        ("table_bytes", Value::U64(fib.bytes() as u64)),
                        ("shards", Value::U64(svc.shard_count() as u64)),
                        ("compile_ms", Value::F64(compile_ms)),
                    ]
                    .into_iter()
                    .map(|(key, v)| (key.to_string(), v))
                    .collect(),
                ));
            }
            println!("{p}: compiled forwarding table");
            println!("  strategy     {}", fib.strategy().label());
            println!("  layout       {}", fib.layout().label());
            println!("  servers      {}", fib.servers());
            println!("  table size   {:.1} KiB", fib.bytes() as f64 / 1024.0);
            println!("  shards       {}", svc.shard_count());
            println!("  compile time {compile_ms:.2} ms");
            Ok(())
        }
        "query" => {
            if rest.len() < 5 {
                return Err("fib query needs <n> <k> <h> <src> <dst>".into());
            }
            let s = parse_u32(&rest[3], "src")?;
            let d = parse_u32(&rest[4], "dst")?;
            if u64::from(s) >= p.server_count() || u64::from(d) >= p.server_count() {
                return Err(format!("server ids must be < {}", p.server_count()));
            }
            let (svc, _) = build_service()?;
            let out = svc.query(NodeId(s), NodeId(d)).map_err(|e| e.to_string())?;
            if json {
                return print_json(&Value::Map(
                    [
                        ("topology", Value::Str(p.to_string())),
                        ("src", Value::U64(u64::from(s))),
                        ("dst", Value::U64(u64::from(d))),
                        ("tier", Value::Str(out.tier.label().to_string())),
                        ("attempts", Value::U64(u64::from(out.attempts))),
                        ("link_hops", Value::U64(out.route.link_hops() as u64)),
                        (
                            "nodes",
                            Value::Seq(
                                out.route
                                    .nodes()
                                    .iter()
                                    .map(|node| Value::U64(u64::from(node.0)))
                                    .collect(),
                            ),
                        ),
                    ]
                    .into_iter()
                    .map(|(key, v)| (key.to_string(), v))
                    .collect(),
                ));
            }
            println!(
                "{p}: {s} → {d} via compiled table ({} links, tier {}, {} attempt(s))",
                out.route.link_hops(),
                out.tier.label(),
                out.attempts
            );
            let net = svc.topo().network();
            for node in out.route.nodes() {
                println!("  {:<6} {node}", net.kind(*node));
            }
            Ok(())
        }
        "bench" => {
            let queries = num("--queries", 20_000)? as usize;
            let seed = num("--seed", 21)?;
            let (svc, compile_ms) = build_service()?;
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs: Vec<(NodeId, NodeId)> = (0..queries)
                .map(|_| {
                    (
                        NodeId(rng.gen_range(0..p.server_count()) as u32),
                        NodeId(rng.gen_range(0..p.server_count()) as u32),
                    )
                })
                .collect();
            // Record per-lookup latency (`fib.lookup_ns`) even without a
            // global telemetry flag: the bench exists to report it.
            let telemetry_was_on = dcn_telemetry::enabled();
            dcn_telemetry::set_enabled(true);
            let t0 = std::time::Instant::now();
            let results = svc.query_batch(&pairs);
            let qps = pairs.len() as f64 / t0.elapsed().as_secs_f64();
            if !telemetry_was_on {
                dcn_telemetry::set_enabled(false);
            }
            let lookup_ns = dcn_telemetry::registry()
                .snapshot()
                .histogram("fib.lookup_ns")
                .cloned();

            // Deterministic result digest: counts plus an FNV-1a hash over
            // every returned node sequence. Identical for any --shards or
            // thread count; `scripts/check.sh` compares digests byte-wise.
            // The hop histogram is HDR-bucketed and value-addressed, so
            // its quantiles share that guarantee (latency quantiles do
            // not, and stay out of the digest).
            let mut hops = dcn_telemetry::HdrHistogram::new();
            let mut ok = 0u64;
            let mut errors = 0u64;
            let mut fallbacks = 0u64;
            let mut total_link_hops = 0u64;
            let mut hash: u64 = 0xcbf29ce484222325;
            let mut eat = |v: u64| {
                for b in v.to_le_bytes() {
                    hash ^= u64::from(b);
                    hash = hash.wrapping_mul(0x100000001b3);
                }
            };
            for r in &results {
                match r {
                    Ok(out) => {
                        ok += 1;
                        if out.tier > abccc::RouteTier::Primary {
                            fallbacks += 1;
                        }
                        total_link_hops += out.route.link_hops() as u64;
                        hops.record(out.route.link_hops() as u64);
                        for node in out.route.nodes() {
                            eat(u64::from(node.0));
                        }
                    }
                    Err(_) => {
                        errors += 1;
                        eat(u64::MAX);
                    }
                }
            }
            let digest = Value::Map(
                [
                    ("topology", Value::Str(p.to_string())),
                    ("queries", Value::U64(queries as u64)),
                    ("seed", Value::U64(seed)),
                    ("fail_rate", Value::F64(fail_rate)),
                    ("fail_seed", Value::U64(fail_seed)),
                    ("ok", Value::U64(ok)),
                    ("errors", Value::U64(errors)),
                    ("fallbacks", Value::U64(fallbacks)),
                    ("total_link_hops", Value::U64(total_link_hops)),
                    ("hop_p50", Value::U64(hops.percentile(0.50))),
                    ("hop_p99", Value::U64(hops.percentile(0.99))),
                    ("hop_p999", Value::U64(hops.percentile(0.999))),
                    ("hop_p9999", Value::U64(hops.percentile(0.9999))),
                    ("route_hash", Value::U64(hash)),
                ]
                .into_iter()
                .map(|(key, v)| (key.to_string(), v))
                .collect(),
            );
            if let Some(path) = flag_value(rest, "--digest") {
                let text = serde_json::to_string_pretty(&digest).map_err(|e| e.to_string())?;
                std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
            }
            if json {
                return print_json(&digest);
            }
            println!("{p}: {queries} queries over {} shards", svc.shard_count());
            println!("  compile time   {compile_ms:.2} ms");
            println!("  throughput     {qps:.0} lookups/s (batched)");
            println!("  ok / errors    {ok} / {errors}");
            println!(
                "  fallbacks      {fallbacks} (patched pairs: {})",
                svc.patch_count()
            );
            println!(
                "  link hops      p50≤{} p99≤{} p999≤{} p9999≤{} max={}",
                hops.percentile(0.50),
                hops.percentile(0.99),
                hops.percentile(0.999),
                hops.percentile(0.9999),
                hops.max()
            );
            if let Some(l) = &lookup_ns {
                println!(
                    "  lookup ns      p50≤{} p99≤{} p999≤{} p9999≤{} max={} (n={})",
                    l.p50, l.p99, l.p999, l.p9999, l.max, l.count
                );
            }
            println!("  route hash     {hash:#018x}");
            Ok(())
        }
        other => Err(format!("unknown fib subcommand `{other}`")),
    }
}

/// Parses the ABCCC head shared by `serve` and `loadgen`: an
/// `abccc:n,k,h` spec or the legacy `<n> <k> <h>` form (the served FIB is
/// digit-indexed, so only ABCCC applies).
fn parse_abccc_head(rest: &[String], what: &str) -> Result<AbcccParams, String> {
    match rest.first().map(|a| is_topology_spec(a)) {
        Some(true) => {
            let (fam, params) = family::parse_spec(&rest[0]).map_err(|e| e.to_string())?;
            if fam.name() != "abccc" {
                return Err(format!(
                    "{what} requires an ABCCC topology, got `{}`",
                    fam.name()
                ));
            }
            params.parse::<AbcccParams>().map_err(|e| e.to_string())
        }
        _ => {
            if rest.len() < 3 {
                return Err(format!("{what} needs a topology spec or <n> <k> <h>"));
            }
            let n = parse_u32(&rest[0], "n")?;
            let k = parse_u32(&rest[1], "k")?;
            let h = parse_u32(&rest[2], "h")?;
            AbcccParams::new(n, k, h).map_err(|e| e.to_string())
        }
    }
}

/// Compiles a route service for `serve`/`loadgen` from the shared flags.
fn compile_for_serving(rest: &[String], p: AbcccParams) -> Result<dcn_fib::RouteService, String> {
    let shards: usize = match flag_value(rest, "--shards") {
        None => 8,
        Some(s) => s.parse().map_err(|_| "--shards expects a number")?,
    };
    let layout = match flag_value(rest, "--layout") {
        None => dcn_fib::FibLayout::Dense,
        Some(s) => dcn_fib::FibLayout::parse(&s)
            .ok_or_else(|| format!("unknown layout `{s}` (dense|hier)"))?,
    };
    let topo = Abccc::new(p).map_err(|e| e.to_string())?;
    dcn_fib::RouteService::compile_with_layout(topo, layout, shards).map_err(|e| e.to_string())
}

fn serve_cmd(args: &[String]) -> Result<(), String> {
    use dcn_serve::{RouteServer, ServeConfig};
    let p = parse_abccc_head(args, "serve")?;
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        flag_value(args, flag)
            .map(|s| s.parse().map_err(|_| format!("{flag} expects a number")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let port = num("--port", 0)? as u16;
    let mut cfg = ServeConfig {
        port,
        ..ServeConfig::default()
    };
    cfg.max_inflight = num("--max-inflight", cfg.max_inflight as u64)? as usize;
    cfg.max_batch = num("--max-batch", cfg.max_batch as u64)? as usize;
    let svc = compile_for_serving(args, p)?;
    let servers = svc.table().servers();
    let shards = svc.shard_count();
    let server = RouteServer::spawn(svc, cfg).map_err(|e| format!("bind: {e}"))?;
    println!(
        "listening on {} ({p}, servers {servers}, shards {shards})",
        server.addr()
    );
    // Serve until stdin closes — the portable "run until the operator
    // stops us" signal (Ctrl-D interactively, closed pipe in scripts).
    let _ = std::io::copy(&mut std::io::stdin(), &mut std::io::sink());
    let drain = server.shutdown();
    println!(
        "drained {} connection(s) at epoch {}",
        drain.connections, drain.epoch
    );
    Ok(())
}

fn loadgen_cmd(args: &[String], json: bool) -> Result<(), String> {
    use dcn_serve::loadgen::{run_loopback, LoadgenConfig};
    use dcn_serve::ServeConfig;
    let p = parse_abccc_head(args, "loadgen")?;
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        flag_value(args, flag)
            .map(|s| s.parse().map_err(|_| format!("{flag} expects a number")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let defaults = LoadgenConfig::default();
    let cfg = LoadgenConfig {
        connections: num("--connections", defaults.connections as u64)? as usize,
        frames: num("--frames", defaults.frames as u64)? as usize,
        batch: num("--batch", defaults.batch as u64)? as usize,
        window: num("--window", defaults.window as u64)? as usize,
        seed: num("--seed", defaults.seed)?,
    };
    let svc = compile_for_serving(args, p)?;
    let shards = svc.shard_count();
    let (report, drain) =
        run_loopback(svc, ServeConfig::default(), &cfg).map_err(|e| e.to_string())?;
    if json {
        return print_json(&with_entries(
            report.to_value(),
            vec![
                ("topology", Value::Str(p.to_string())),
                ("shards", Value::U64(shards as u64)),
                ("drained_connections", Value::U64(drain.connections as u64)),
            ],
        ));
    }
    println!(
        "{p}: {} connections × {} frames × {} pairs over {shards} shards",
        report.connections, report.frames, report.batch
    );
    println!("  requests       {}", report.requests);
    println!("  ok / errors    {} / {}", report.ok, report.route_errors);
    println!("  rejects        {}", report.rejects);
    println!(
        "  throughput     {:.0} lookups/s over TCP",
        report.lookups_per_sec
    );
    println!(
        "  frame rtt ns   p50≤{} p99≤{} p999≤{}",
        report.rtt_p50_ns, report.rtt_p99_ns, report.rtt_p999_ns
    );
    println!("  digest         {}", report.digest);
    Ok(())
}

fn topo_cmd(args: &[String], json: bool) -> Result<(), String> {
    let sub = args.first().ok_or("topo needs `stats`")?;
    let rest = &args[1..];
    match sub.as_str() {
        "stats" => {
            let mut rest: Vec<String> = rest.to_vec();
            let estimate = take_flag(&mut rest, "--estimate");
            let samples: usize = match take_flag_value(&mut rest, "--samples") {
                None => 64,
                Some(s) => s.parse().map_err(|_| "--samples expects a number")?,
            };
            let seed: u64 = match take_flag_value(&mut rest, "--seed") {
                None => 7,
                Some(s) => s.parse().map_err(|_| "--seed expects a number")?,
            };
            let trials: usize = match take_flag_value(&mut rest, "--trials") {
                None => 4,
                Some(s) => s.parse().map_err(|_| "--trials expects a number")?,
            };
            let (topo, _) = parse_topology(&rest)?;
            let net = topo.network();
            if !estimate {
                // Exact path: same engine `props` uses, without the CAPEX
                // extras — diameter/APL only where the sweep is feasible.
                let small = net.server_count() <= 2048;
                let stats = if small {
                    dcn_metrics::TopologyStats::measure(topo.as_ref())
                } else {
                    dcn_metrics::TopologyStats::quick(topo.as_ref())
                };
                if json {
                    return print_json(&stats.to_value());
                }
                println!("{}", stats.name);
                println!("  servers   {}", stats.servers);
                println!("  switches  {}", stats.switches);
                println!("  wires     {}", stats.wires);
                match stats.diameter_server_hops {
                    Some(d) => println!("  diameter  {d} server hops (exact)"),
                    None => println!("  diameter  - (use --estimate at this size)"),
                }
                if let Some(apl) = stats.avg_path_length {
                    println!("  APL       {apl:.4} server hops (exact)");
                }
                return Ok(());
            }
            // Sampled path: seeded source sampling, byte-identical at any
            // thread count (the smoke test compares digests across runs).
            let metrics = netgraph::sample::sampled_server_metrics(net, samples, seed)
                .ok_or("sampled metrics unavailable (disconnected or <2 servers)")?;
            let bisection = netgraph::sample::sampled_bisection(net, trials, seed)
                .ok_or("sampled bisection unavailable")?;
            if json {
                return print_json(&Value::Map(
                    [
                        ("topology", Value::Str(topo.name())),
                        ("servers", Value::U64(net.server_count() as u64)),
                        ("switches", Value::U64(net.switch_count() as u64)),
                        ("wires", Value::U64(net.link_count() as u64)),
                        ("samples", Value::U64(metrics.apl.samples as u64)),
                        ("seed", Value::U64(seed)),
                        (
                            "diameter_lower_bound",
                            Value::U64(u64::from(metrics.diameter_lb)),
                        ),
                        ("apl_mean", Value::F64(metrics.apl.mean)),
                        ("apl_ci95", Value::F64(metrics.apl.ci95)),
                        ("bisection_trials", Value::U64(bisection.trials as u64)),
                        ("bisection_min_cut", Value::U64(bisection.min_cut)),
                        ("bisection_mean_cut", Value::F64(bisection.mean_cut)),
                    ]
                    .into_iter()
                    .map(|(key, v)| (key.to_string(), v))
                    .collect(),
                ));
            }
            println!("{} (sampled, seed {seed})", topo.name());
            println!("  servers       {}", net.server_count());
            println!("  switches      {}", net.switch_count());
            println!("  wires         {}", net.link_count());
            println!(
                "  diameter      ≥ {} server hops ({} sources)",
                metrics.diameter_lb, metrics.apl.samples
            );
            println!(
                "  APL           {:.4} ± {:.4} server hops (95% CI)",
                metrics.apl.mean, metrics.apl.ci95
            );
            println!(
                "  bisection     ≤ {} links (min of {} balanced probes, mean {:.1})",
                bisection.min_cut, bisection.trials, bisection.mean_cut
            );
            Ok(())
        }
        other => Err(format!("unknown topo subcommand `{other}`")),
    }
}

fn experiments_cmd(args: &[String]) -> Result<(), String> {
    use abccc_bench::engine::{run, RunOptions};
    use abccc_bench::registry::{all, find, Preset};

    let sub = args.first().ok_or("experiments needs `list` or `run`")?;
    let rest = &args[1..];
    match sub.as_str() {
        "list" => {
            println!(
                "{:<20} {:<11} {:>4} {:>5} {:>5}  summary",
                "name", "paper ref", "tiny", "paper", "scale"
            );
            for spec in all() {
                println!(
                    "{:<20} {:<11} {:>4} {:>5} {:>5}  {}",
                    spec.name(),
                    spec.paper_ref(),
                    spec.points(Preset::Tiny).len(),
                    spec.points(Preset::Paper).len(),
                    spec.points(Preset::Scale).len(),
                    spec.summary(),
                );
            }
            println!("(point counts are grid points per preset)");
            Ok(())
        }
        "run" => {
            let mut rest: Vec<String> = rest.to_vec();
            let run_all = take_flag(&mut rest, "--all");
            let preset = match take_flag_value(&mut rest, "--preset") {
                None => Preset::Paper,
                Some(p) => Preset::parse(&p)
                    .ok_or_else(|| format!("unknown preset `{p}` (tiny|paper|scale)"))?,
            };
            let json_dir = take_flag_value(&mut rest, "--json").map(Into::into);
            let threads: usize = match take_flag_value(&mut rest, "--threads") {
                None => 0,
                Some(t) => t.parse().map_err(|_| "--threads expects a number")?,
            };
            if let Some(bad) = rest.iter().find(|a| a.starts_with("--")) {
                return Err(format!("unknown flag `{bad}` for experiments run"));
            }
            let specs: Vec<&'static dyn abccc_bench::registry::Experiment> = if run_all {
                if !rest.is_empty() {
                    return Err("give either --all or experiment names, not both".into());
                }
                all().to_vec()
            } else {
                if rest.is_empty() {
                    return Err(
                        "experiments run needs names or --all (see `experiments list`)".into(),
                    );
                }
                rest.iter()
                    .map(|name| {
                        find(name).ok_or_else(|| {
                            format!("unknown experiment `{name}` (see `experiments list`)")
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            let opts = RunOptions {
                preset,
                threads,
                json_dir,
                print_tables: true,
                print_summary: true,
            };
            run(&specs, &opts)?;
            Ok(())
        }
        other => Err(format!("unknown experiments subcommand `{other}`")),
    }
}

/// `perf record|diff|trace-stat` — the performance sentinel.
///
/// `record` and `diff` run the selected experiments `--runs` times
/// through the sweep engine (no artifact directory needed), fold each
/// experiment's repetitions into a component-wise median
/// [`dcn_telemetry::PerfRecord`], and either store them as baselines or
/// compare them against the stored ones. `diff` exits nonzero when any
/// metric crosses both the relative and absolute regression gates.
fn perf_cmd(args: &[String], json: bool) -> Result<ExitCode, String> {
    use abccc_bench::engine::{run, RunOptions};
    use abccc_bench::registry::{all, find, Preset};

    let sub = args
        .first()
        .ok_or("perf needs `record`, `diff` or `trace-stat`")?;
    let mut rest: Vec<String> = args[1..].to_vec();

    if sub == "trace-stat" {
        let path = rest.first().ok_or("perf trace-stat needs a FILE")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let stat = trace_stat(&text)?;
        if json {
            return print_json(&Value::Map(
                [
                    ("file", Value::Str(path.clone())),
                    ("spans", Value::U64(stat.spans)),
                    ("lanes", Value::U64(stat.lanes)),
                    ("roots", Value::U64(stat.roots)),
                ]
                .into_iter()
                .map(|(key, v)| (key.to_string(), v))
                .collect(),
            ))
            .map(|()| ExitCode::SUCCESS);
        }
        println!(
            "{path}: valid Chrome trace, {} spans, {} lanes, {} roots",
            stat.spans, stat.lanes, stat.roots
        );
        return Ok(ExitCode::SUCCESS);
    }
    if sub != "record" && sub != "diff" {
        return Err(format!("unknown perf subcommand `{sub}`"));
    }

    let run_all = take_flag(&mut rest, "--all");
    let preset = match take_flag_value(&mut rest, "--preset") {
        None => Preset::Tiny,
        Some(p) => {
            Preset::parse(&p).ok_or_else(|| format!("unknown preset `{p}` (tiny|paper|scale)"))?
        }
    };
    let runs: usize = match take_flag_value(&mut rest, "--runs") {
        None => 3,
        Some(r) => match r.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err("--runs expects a number ≥ 1".into()),
        },
    };
    let threads: usize = match take_flag_value(&mut rest, "--threads") {
        None => 0,
        Some(t) => t.parse().map_err(|_| "--threads expects a number")?,
    };
    let baselines_dir = take_flag_value(&mut rest, "--baselines")
        .unwrap_or_else(|| "bench_results/baselines".to_string());
    let rel: Option<f64> = take_flag_value(&mut rest, "--rel")
        .map(|r| r.parse().map_err(|_| "--rel expects a number"))
        .transpose()?;
    if let Some(bad) = rest.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown flag `{bad}` for perf {sub}"));
    }
    let specs: Vec<&'static dyn abccc_bench::registry::Experiment> = if rest.is_empty() || run_all {
        if run_all && !rest.is_empty() {
            return Err("give either --all or experiment names, not both".into());
        }
        all().to_vec()
    } else {
        rest.iter()
            .map(|name| {
                find(name)
                    .ok_or_else(|| format!("unknown experiment `{name}` (see `experiments list`)"))
            })
            .collect::<Result<_, _>>()?
    };

    // Measure: N quiet engine runs, telemetry reset before each so every
    // repetition's histograms and gauges stand alone (this also discards
    // any spans recorded earlier in the process — perf is a measurement
    // command, not a tracing one).
    let opts = RunOptions {
        preset,
        threads,
        json_dir: None,
        print_tables: false,
        print_summary: false,
    };
    let mut per_run: Vec<Vec<dcn_telemetry::PerfRecord>> = Vec::with_capacity(runs);
    for _ in 0..runs {
        dcn_telemetry::reset();
        let report = run(&specs, &opts)?;
        per_run.push(
            report
                .manifests
                .iter()
                .map(dcn_telemetry::PerfRecord::from_manifest)
                .collect(),
        );
    }
    let current: Vec<dcn_telemetry::PerfRecord> = specs
        .iter()
        .filter_map(|spec| {
            let reps: Vec<dcn_telemetry::PerfRecord> = per_run
                .iter()
                .flat_map(|run| run.iter().filter(|r| r.experiment == spec.name()).cloned())
                .collect();
            dcn_telemetry::PerfRecord::median_of(&reps)
        })
        .collect();

    if sub == "record" {
        dcn_telemetry::save_baselines(&baselines_dir, &current)
            .map_err(|e| format!("writing {baselines_dir}: {e}"))?;
        if json {
            print_json(&Value::Map(
                [
                    ("recorded", Value::U64(current.len() as u64)),
                    ("preset", Value::Str(preset.to_string())),
                    ("runs", Value::U64(runs as u64)),
                    ("dir", Value::Str(baselines_dir.clone())),
                ]
                .into_iter()
                .map(|(key, v)| (key.to_string(), v))
                .collect(),
            ))?;
        } else {
            println!(
                "recorded {} baseline(s) (preset {preset}, median of {runs} run(s)) to {baselines_dir}",
                current.len()
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let baselines = dcn_telemetry::load_baselines(&baselines_dir)?;
    if baselines.is_empty() {
        return Err(format!(
            "no baselines under {baselines_dir} — run `abccc-cli perf record` first"
        ));
    }
    let mut thresholds = dcn_telemetry::DiffThresholds::default();
    if let Some(rel) = rel {
        thresholds.rel = rel;
    }
    let verdict = dcn_telemetry::diff(&baselines, &current, &thresholds);
    if json {
        println!("{}", verdict.to_json());
    } else {
        print!("{}", verdict.render());
    }
    Ok(if verdict.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Summary of a Chrome trace file: complete spans, distinct thread
/// lanes, root spans (`args.parent == 0`).
struct TraceStat {
    spans: u64,
    lanes: u64,
    roots: u64,
}

/// Parses and validates `--trace-out` output.
fn trace_stat(text: &str) -> Result<TraceStat, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = v
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "traceEvents"))
        .and_then(|(_, v)| v.as_seq())
        .ok_or("missing traceEvents array")?;
    let field = |ev: &Value, key: &str| -> Option<Value> {
        ev.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let mut spans = 0u64;
    let mut roots = 0u64;
    let mut lanes: Vec<u64> = Vec::new();
    for ev in events {
        if field(ev, "ph") != Some(Value::Str("X".to_string())) {
            continue;
        }
        spans += 1;
        if let Some(Value::U64(tid)) = field(ev, "tid") {
            if !lanes.contains(&tid) {
                lanes.push(tid);
            }
        }
        let parent = field(ev, "args")
            .as_ref()
            .and_then(|a| a.as_map()?.iter().find(|(k, _)| k == "parent").cloned());
        if let Some((_, Value::U64(0))) = parent {
            roots += 1;
        }
    }
    Ok(TraceStat {
        spans,
        lanes: lanes.len() as u64,
        roots,
    })
}

fn capex(args: &[String], json: bool) -> Result<(), String> {
    let (topo, _) = parse_topology(args)?;
    let stats = dcn_metrics::TopologyStats::quick(topo.as_ref());
    let c = dcn_metrics::CostModel::default().capex(&stats);
    if json {
        return print_json(&with_entries(
            c.to_value(),
            vec![
                ("total_usd", Value::F64(c.total())),
                ("per_server_usd", Value::F64(c.per_server())),
            ],
        ));
    }
    println!("{} — CAPEX (default 2015-commodity model)", c.name);
    println!("  switches   ${:>12.2}", c.switches_usd);
    println!("  NICs       ${:>12.2}", c.nics_usd);
    println!("  cables     ${:>12.2}", c.cables_usd);
    println!("  total      ${:>12.2}", c.total());
    println!("  per server ${:>12.2}", c.per_server());
    Ok(())
}
