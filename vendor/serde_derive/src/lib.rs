//! Derive macros for the vendored `serde` stand-in.
//!
//! Crates.io is unavailable in the build environment, so this proc-macro
//! crate parses the derive input by hand (no `syn`/`quote`) and emits
//! `impl serde::Serialize` / `impl serde::Deserialize` blocks for the item
//! shapes this repository actually uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, like serde),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Generics, lifetimes and `#[serde(...)]` attributes are intentionally
//! unsupported; deriving on such an item is a compile error rather than a
//! silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive input.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!("let mut __m = ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__m)")
        }
        Item::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct { arity, .. } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Seq(::std::vec![{}])",
                                    elems.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![({vn:?}.to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ let mut __m = ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(::std::vec![({vn:?}.to_string(), ::serde::Value::Map(__m))]) }},"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__m, {f:?})?"))
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::Error::expected(\"map for {name}\"))?; \
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::__private::element(__s, {i})?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence for {name}\"))?; \
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => {
            format!("::core::result::Result::Ok({name})")
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "{0:?} => return ::core::result::Result::Ok({name}::{0}),",
                        v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::__private::element(__s, {i})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __s = __payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\"))?; ::core::result::Result::Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__private::field(__m, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __m = __payload.as_map().ok_or_else(|| ::serde::Error::expected(\"map\"))?; ::core::result::Result::Ok({name}::{vn} {{ {} }}) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{ \
                     match __s.as_str() {{ {unit_arms} _ => return ::core::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant {{__s:?}}\"))), }} \
                 }} \
                 let (__tag, __payload) = ::serde::__private::variant(__v)?; \
                 match __tag {{ {tagged_arms} _ => ::core::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant {{__tag:?}}\"))), }}"
            )
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic types (on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attributes_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct/variant body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("expected field name, found {other}"),
        }
        i += 1;
        // Skip `: Type` up to the next comma at angle-bracket depth 0.
        // Generic arguments use `<`/`>` puncts (not groups), so track them;
        // parenthesized types are single groups and need no handling.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of comma-separated items at angle-depth 0 (tuple-struct fields).
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_item_since_comma = true;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 < tokens.len() {
                    count += 1;
                    saw_item_since_comma = false;
                }
            }
            _ => saw_item_since_comma = true,
        }
    }
    let _ = saw_item_since_comma;
    count
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit discriminants are not supported (variant `{name}`)");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
