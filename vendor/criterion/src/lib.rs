//! Offline stand-in for the `criterion` crate.
//!
//! Covers the API surface the repository's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, `black_box` — with a simple
//! wall-clock measurement loop: warm up, then time fixed-size batches and
//! report the median per-iteration latency.
//!
//! Measurements from the most recent run can be drained with
//! [`Criterion::take_measurements`], which the repository's
//! `perf_trajectory` bench uses to emit machine-readable JSON.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export: defeat constant folding around a benchmarked expression.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` label.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Total iterations measured (excluding warm-up).
    pub iterations: u64,
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = id.to_string();
        let sample_size = self.sample_size;
        self.run(label, sample_size, f);
    }

    /// Drains every measurement recorded so far.
    pub fn take_measurements(&mut self) -> Vec<Measurement> {
        std::mem::take(&mut self.measurements)
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        let m = bencher.finish(id);
        println!(
            "{:<60} median {:>12}  mean {:>12}  ({} iters)",
            m.id,
            format_ns(m.median_ns),
            format_ns(m.mean_ns),
            m.iterations
        );
        self.measurements.push(m);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(label, sample_size, f);
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates a label from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Creates a label from a parameter display alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of an adaptively chosen
    /// batch size (targeting a few milliseconds per sample).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until it costs ≥ ~2 ms
        // (or a cap, for very slow benchmarks).
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.sample_size.max(2) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push((start.elapsed(), batch));
        }
    }

    fn finish(self, id: String) -> Measurement {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_secs_f64() * 1e9 / *n as f64)
            .collect();
        if per_iter.is_empty() {
            per_iter.push(f64::NAN);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let iterations: u64 = self.samples.iter().map(|(_, n)| n).sum();
        Measurement {
            id,
            median_ns: median,
            mean_ns: mean,
            iterations,
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Binds benchmark target functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this driver has no
            // CLI surface, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        let ms = c.take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "t/sum");
        assert!(ms[0].median_ns > 0.0);
    }
}
