//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON through the vendored `serde` crate's
//! self-describing [`Value`] model. Covers the API surface this repository
//! uses: [`to_string`], [`to_string_pretty`] and [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&v)
}

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints the shortest roundtrip form but elides the
                // decimal point for integral floats; restore it so the
                // value re-parses as a float, as serde_json does.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::I64(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u32, 2u64), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(u32, u64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(4usize, 7usize);
        assert_eq!(to_string(&m).unwrap(), "{\"4\":7}");
        let back: std::collections::BTreeMap<usize, usize> = from_str("{\"4\":7}").unwrap();
        assert_eq!(back, m);

        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
