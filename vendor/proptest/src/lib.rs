//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal property-testing driver covering the API surface this
//! repository uses: the [`proptest!`] macro with `arg in strategy` bindings
//! and an optional `#![proptest_config(...)]` header, integer range and
//! tuple strategies, [`any`], `prop_map`/`prop_filter` adapters, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its exact inputs instead;
//! * deterministic seeding derived from the test name, so failures
//!   reproduce exactly on re-run;
//! * rejection (via `prop_assume!` or `prop_filter`) retries with fresh
//!   input and gives up after a generous budget.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Input rejected (e.g. by `prop_assume!`); try another input.
    Reject(String),
    /// Assertion failure; the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with a reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Outcome of one generated case, as seen by the driver.
#[derive(Debug)]
pub enum CaseResult {
    /// Property held.
    Pass,
    /// Input was rejected before or during the test body.
    Reject,
    /// Property violated; message already includes the inputs.
    Fail(String),
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value, or `Err` if this input should be rejected.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying locally first).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Result<U, TestCaseError> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        for _ in 0..100 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(v_ref(&v)) {
                return Ok(v);
            }
        }
        Err(TestCaseError::reject(self.whence))
    }
}

#[inline]
fn v_ref<T>(v: &T) -> &T {
    v
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Result<f64, TestCaseError> {
        Ok(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                Ok(($(self.$n.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Always produces a clone of the given value.
pub struct JustStrategy<T: Clone>(pub T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// `Just(v)`: strategy producing exactly `v`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(v: T) -> JustStrategy<T> {
    JustStrategy(v)
}

/// Full-domain values for primitive types.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T` (`any::<u64>()` style).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(T::arbitrary(rng))
    }
}

/// Drives one property: keeps generating cases until `cfg.cases` pass,
/// panicking on the first failure. Called by the [`proptest!`] expansion.
///
/// # Panics
///
/// Panics if a case fails or too many inputs are rejected.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseResult,
) {
    use rand::SeedableRng;
    // FNV-style hash of the test name: failures reproduce across runs.
    let mut base: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x100000001b3);
    }
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = u64::from(cfg.cases) * 64 + 1024;
    let mut sequence: u64 = 0;
    while passed < cfg.cases {
        let mut rng =
            TestRng::seed_from_u64(base.wrapping_add(sequence.wrapping_mul(0x9E3779B97F4A7C15)));
        sequence += 1;
        match case(&mut rng) {
            CaseResult::Pass => passed += 1,
            CaseResult::Reject => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property `{name}`: too many rejected inputs ({rejected}) — \
                     prop_assume!/prop_filter conditions are unsatisfiable"
                );
            }
            CaseResult::Fail(msg) => {
                panic!("property `{name}` failed after {passed} passing case(s): {msg}")
            }
        }
    }
}

/// The proptest entry-point macro: wraps `fn name(arg in strategy, ...)`
/// items into deterministic randomized tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&__cfg, stringify!($name), |__rng| {
                    // Capture each input's Debug form before destructuring,
                    // since the body may move the bindings.
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), __rng) {
                            ::core::result::Result::Ok(v) => {
                                __inputs.push_str(&::std::format!(
                                    "\n    {} = {:?}",
                                    stringify!($arg),
                                    &v
                                ));
                                v
                            }
                            ::core::result::Result::Err(_) => return $crate::CaseResult::Reject,
                        };
                    )+
                    let __inputs = __inputs;
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => $crate::CaseResult::Pass,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            $crate::CaseResult::Reject
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            $crate::CaseResult::Fail(::std::format!(
                                "{msg}\n  inputs:{}",
                                __inputs
                            ))
                        }
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} == {}\n  left: {l:?}\n  right: {r:?}",
                    stringify!($left), stringify!($right)),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} == {}\n  left: {l:?}\n  right: {r:?}\n  {}",
                    stringify!($left), stringify!($right), ::std::format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} != {}\n  both: {l:?}",
                    stringify!($left), stringify!($right)),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} != {}\n  both: {l:?}\n  {}",
                    stringify!($left), stringify!($right), ::std::format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Strategies that sample from explicit value collections.
pub mod sample {
    use crate::{Strategy, TestCaseError, TestRng};
    use rand::Rng;

    /// Chooses uniformly from a fixed list of values.
    pub fn select<T: Clone + core::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(
            !items.is_empty(),
            "sample::select requires a non-empty list"
        );
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
            let idx = rng.gen_range(0..self.items.len());
            Ok(self.items[idx].clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 1u64..=3) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn map_and_filter_compose(
            v in (1u32..100).prop_map(|x| x * 2).prop_filter("multiple of 4", |x| x % 4 == 0),
            seed in any::<u64>(),
        ) {
            prop_assert_eq!(v % 4, 0);
            let _ = seed;
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    #[allow(unnameable_test_items)] // `proptest!` emits `#[test] fn` nested here on purpose
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(n in 0u32..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
