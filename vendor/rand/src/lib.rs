//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the exact API surface the repository uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   [`SeedableRng::seed_from_u64`] (SplitMix64 expansion, the same
//!   construction the xoshiro reference implementation recommends);
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom`] — `shuffle`, `choose`, `choose_multiple`.
//!
//! Stream values differ from the real `rand` crate (which never guarantees
//! value stability across versions either); every test in this repository
//! treats seeded RNG output as arbitrary-but-deterministic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand` crate's `StdRng` (ChaCha-based) this is not
    /// cryptographically secure — the repository only uses it for
    /// reproducible simulation inputs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::Rng;

    /// Iterator over elements picked by
    /// [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        items: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.items.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.items.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount.min(len)` distinct elements in random order.
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up as a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            let picked: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                items: picked.into_iter(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 20);
        assert!(v.choose(&mut rng).is_some());
    }
}
