//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free replacement that covers exactly the
//! API surface the repository uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs and enums, and JSON conversion through `serde_json`.
//!
//! Instead of serde's visitor architecture this stand-in routes everything
//! through a single self-describing [`Value`] tree (the `miniserde`
//! approach): `Serialize` lowers a Rust value into a [`Value`] and
//! `Deserialize` rebuilds it. That is all the repository needs — the only
//! consumers are `serde_json::{to_string, to_string_pretty, from_str}`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree mirroring the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative parses as `U64`).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error describing a type mismatch.
    pub fn expected(what: &str) -> Error {
        Error(format!("expected {what}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers `self` into a [`Value`].
pub trait Serialize {
    /// Converts to the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts from the self-describing value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::expected(stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))?,
                    _ => return Err(Error::expected(stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ----------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string")),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("tuple sequence"))?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(Error(format!("expected {expected}-tuple, got {} items", s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types usable as JSON object keys (serialized to strings, like serde's
/// integer-keyed maps).
pub trait MapKey: Sized {
    /// String form of the key.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error(format!("bad {} map key: {s:?}", stringify!($t))))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (serde_json users in this repo
        // compare rendered strings in tests).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support code for the derive macros. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up and deserializes a struct field from a map value.
    pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("field `{name}`: {e}"))),
            None => {
                T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{name}`")))
            }
        }
    }

    /// Deserializes the `i`-th element of a tuple-struct sequence.
    pub fn element<T: Deserialize>(seq: &[Value], i: usize) -> Result<T, Error> {
        let v = seq
            .get(i)
            .ok_or_else(|| Error(format!("missing tuple element {i}")))?;
        T::from_value(v)
    }

    /// The single `{ "Variant": payload }` entry of an enum value.
    pub fn variant(v: &Value) -> Result<(&str, &Value), Error> {
        match v {
            Value::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), &m[0].1)),
            _ => Err(Error::expected("single-entry variant map")),
        }
    }
}
