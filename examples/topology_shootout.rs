//! Topology shoot-out for a shuffle-heavy analytics job: compare ABCCC
//! configurations against BCube and a fat-tree on the same workload, at
//! flow level *and* packet level, then weigh the result against CAPEX —
//! the trade-off table that motivates ABCCC's tunable `h`.
//!
//! ```text
//! cargo run --release --example topology_shootout
//! ```

use abccc_suite::prelude::*;
use rand::SeedableRng;

struct Contender {
    topo: Box<dyn Topology>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let contenders: Vec<Contender> = vec![
        Contender {
            topo: Box::new(Abccc::new(AbcccParams::new(4, 2, 2)?)?),
        },
        Contender {
            topo: Box::new(Abccc::new(AbcccParams::new(4, 2, 3)?)?),
        },
        Contender {
            topo: Box::new(BCube::new(BCubeParams::new(4, 2)?)?),
        },
        Contender {
            topo: Box::new(FatTree::new(FatTreeParams::new(8)?)?),
        },
    ];
    let cost = CostModel::default();

    println!(
        "{:<14} {:>7} {:>10} {:>12} {:>12} {:>10} {:>11}",
        "structure", "servers", "$/server", "shuffle Gbps", "per-flow", "p99 lat", "loss"
    );
    for c in &contenders {
        let topo = c.topo.as_ref();
        let n = topo.network().server_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);

        // Flow level: shuffle = random permutation, max-min fair shares.
        let pairs = dcn_workloads::traffic::random_permutation(n, &mut rng);
        let flow = FlowSim::new(topo).run(&pairs)?;

        // Packet level: the same pairs as 200-packet bulk transfers.
        let specs: Vec<FlowSpec> = pairs
            .iter()
            .take(48)
            .map(|&(s, d)| FlowSpec::bulk(s, d, 200))
            .collect();
        let pkt = PacketSim::new(topo, PacketSimConfig::default()).run(&specs)?;

        let capex = cost.capex(&TopologyStats::quick(topo));
        println!(
            "{:<14} {:>7} {:>10.2} {:>12.1} {:>12.3} {:>9.1}µs {:>10.4}",
            flow.topology,
            n,
            capex.per_server(),
            flow.aggregate_rate,
            flow.mean_rate,
            pkt.p99_latency_ns as f64 / 1000.0,
            pkt.loss_rate(),
        );
    }
    println!();
    println!("reading: h tunes the trade-off — h=2 (BCCC) is cheapest per server,");
    println!("h=3 buys shorter paths and higher per-flow rates; BCube is the fast,");
    println!("expensive endpoint; the fat-tree needs big-radix switches for the same job.");
    Ok(())
}
