//! Capacity-planning scenario: a cluster that starts at a few hundred
//! servers and must grow past 5 000 without downtime.
//!
//! The operator compares ABCCC (pay-as-you-grow, zero legacy impact)
//! against BCube (every expansion opens every chassis) and a fat-tree
//! (fork-lift fabric replacement), using the repository's cost model.
//!
//! ```text
//! cargo run --example expansion_planning
//! ```

use abccc_suite::prelude::*;
use dcn_metrics::expansion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cost = CostModel::default();
    let target = 5_000u64;

    println!("== goal: grow from a few hundred servers past {target} ==\n");

    // --- ABCCC track: n=4 switches, 3-port servers, grow k.
    println!("ABCCC track (n=4, h=3):");
    let mut p = AbcccParams::new(4, 1, 3)?;
    let mut abccc_spend = 0.0;
    while p.server_count() < target {
        let ledger = expansion::abccc_expansion(p, &cost)?;
        println!(
            "  {:>24}: {:>5} → {:>5} servers, new spend ${:>8.0}, legacy touched: {}",
            ledger.name,
            ledger.from_servers,
            ledger.to_servers,
            ledger.new_capex_usd,
            if ledger.legacy_untouched() {
                "none"
            } else {
                "YES"
            }
        );
        assert!(ledger.legacy_untouched());
        abccc_spend += ledger.new_capex_usd;
        p = p.grown()?;
    }
    println!(
        "  reached {} servers; growth spend ${abccc_spend:.0}\n",
        p.server_count()
    );

    // --- BCube track: same switches, grow k — and open every server.
    println!("BCube track (n=4):");
    let mut b = BCubeParams::new(4, 1)?;
    let mut bcube_spend = 0.0;
    let mut bcube_touched = 0u64;
    while b.server_count() < target {
        let ledger = expansion::bcube_expansion(b, &cost)?;
        println!(
            "  {:>24}: {:>5} → {:>5} servers, new spend ${:>8.0}, NICs retrofitted: {}",
            ledger.name,
            ledger.from_servers,
            ledger.to_servers,
            ledger.new_capex_usd,
            ledger.legacy_nics_added
        );
        bcube_spend += ledger.new_capex_usd;
        bcube_touched += ledger.legacy_nics_added;
        b = BCubeParams::new(4, b.k() + 1)?;
    }
    println!(
        "  reached {} servers; growth spend ${bcube_spend:.0}, {} legacy chassis opened\n",
        b.server_count(),
        bcube_touched
    );

    // --- Fat-tree track: each growth step is a fork-lift upgrade.
    println!("Fat-tree track:");
    let mut ft_spend = 0.0;
    let mut prev = FatTreeParams::new(8)?;
    for next in [16u32, 24, 32] {
        if prev.server_count() >= target {
            break;
        }
        let ledger = expansion::fattree_expansion(prev, next, &cost)?;
        println!(
            "  {:>24}: {:>5} → {:>5} servers, new spend ${:>8.0}, switches discarded: {}",
            ledger.name,
            ledger.from_servers,
            ledger.to_servers,
            ledger.new_capex_usd,
            ledger.legacy_switches_discarded
        );
        ft_spend += ledger.new_capex_usd;
        prev = FatTreeParams::new(next)?;
    }
    println!(
        "  reached {} servers; growth spend ${ft_spend:.0}\n",
        prev.server_count()
    );

    println!("== summary ==");
    println!("ABCCC grows in place: no chassis opened, no cable re-pulled, no switch discarded.");
    println!("BCube opens {bcube_touched} chassis along the way; the fat-tree discards its fabric each step.");
    Ok(())
}
