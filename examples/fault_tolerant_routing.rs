//! Operating through failures: a rack of servers and a batch of switches
//! die; connections must keep routing around the damage.
//!
//! Demonstrates the native fault-tolerant routing (permutation retry →
//! proxy detour → BFS fallback) and verifies it is *complete*: it fails
//! only when the endpoints are physically disconnected.
//!
//! ```text
//! cargo run --example fault_tolerant_routing
//! ```

use abccc_suite::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = AbcccParams::new(4, 2, 2)?; // BCCC-like: 192 dual-port servers
    let topo = Abccc::new(params)?;
    let net = topo.network();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);

    println!(
        "{}: {} servers, {} switches",
        params,
        net.server_count(),
        net.switch_count()
    );

    // Disaster: one whole crossbar group (a "rack") plus 8% of switches.
    let doomed_label = abccc::CubeLabel(17);
    let rack = (0..params.group_size())
        .map(|pos| ServerAddr::new(&params, doomed_label, pos).node_id(&params));
    let mask = netgraph::FaultScenario::seeded(2026)
        .fail_nodes(rack)
        .fail_switches_frac(0.08)
        .build(net);
    println!(
        "failed: {} servers (group {}), {} switches",
        params.group_size(),
        doomed_label.0,
        mask.failed_node_count() as u32 - params.group_size()
    );

    // Route 500 random alive pairs through the resilient router
    // (permutation retry → proxy detour → BFS fallback).
    let router = ResilientRouter::default();
    let alive: Vec<NodeId> = net.server_ids().filter(|&s| mask.node_alive(s)).collect();
    let mut routed = 0usize;
    let mut detoured = 0usize;
    let mut disconnected = 0usize;
    let mut extra_hops = 0i64;
    for _ in 0..500 {
        let (&s, &d) = (
            alive.choose(&mut rng).expect("alive servers"),
            alive.choose(&mut rng).expect("alive servers"),
        );
        if s == d {
            continue;
        }
        let healthy_len =
            abccc::routing::distance(&params, topo.server_addr(s), topo.server_addr(d)) as i64;
        match router.route(&topo, s, d, Some(&mask)) {
            Ok(outcome) => {
                outcome
                    .route
                    .validate(net, Some(&mask))
                    .map_err(|e| e.to_string())?;
                routed += 1;
                let len = outcome.route.server_hops(net) as i64;
                if len > healthy_len {
                    detoured += 1;
                    extra_hops += len - healthy_len;
                }
            }
            Err(_) => {
                // Completeness check: only allowed when truly disconnected.
                assert!(
                    netgraph::bfs::shortest_path(net, s, d, Some(&mask)).is_none(),
                    "router gave up although a path existed"
                );
                disconnected += 1;
            }
        }
    }
    println!(
        "routed {routed} pairs, {detoured} needed a detour, {disconnected} truly disconnected"
    );
    if detoured > 0 {
        println!(
            "average detour cost: {:.2} extra hops",
            extra_hops as f64 / detoured as f64
        );
    }
    println!("completeness verified: every failure coincided with physical disconnection");
    Ok(())
}
