//! Visualizing a topology: writes SVG and Graphviz DOT renderings of a
//! small ABCCC network to `target/viz/`, with a highlighted route pair and
//! a failure overlay.
//!
//! ```text
//! cargo run --example visualize
//! open target/viz/abccc_routes.svg
//! ```

use abccc_suite::prelude::*;
use netgraph::{dot, svg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = AbcccParams::new(3, 1, 2)?; // 18 servers — readable
    let topo = Abccc::new(params)?;
    let out = std::path::Path::new("target/viz");
    std::fs::create_dir_all(out)?;

    // Two disjoint routes between opposite corners.
    let src = NodeId(0);
    let dst = NodeId((params.server_count() - 1) as u32);
    let routes =
        abccc::parallel::parallel_routes(&params, topo.server_addr(src), topo.server_addr(dst), 2);
    println!(
        "{}: highlighting {} disjoint routes {src} → {dst}",
        params,
        routes.len()
    );

    let svg_text = svg::to_svg(
        topo.network(),
        &svg::SvgOptions {
            highlight: routes.clone(),
            ..Default::default()
        },
    );
    std::fs::write(out.join("abccc_routes.svg"), &svg_text)?;

    let dot_text = dot::to_dot(
        topo.network(),
        &dot::DotOptions {
            highlight: routes,
            name: "abccc".into(),
            ..Default::default()
        },
    );
    std::fs::write(out.join("abccc_routes.dot"), &dot_text)?;

    // A failure overlay: one group down.
    let group = (0..params.group_size())
        .map(|pos| ServerAddr::new(&params, abccc::CubeLabel(4), pos).node_id(&params));
    let mask = netgraph::FaultScenario::seeded(0)
        .fail_nodes(group)
        .build(topo.network());
    let svg_faults = svg::to_svg(
        topo.network(),
        &svg::SvgOptions {
            mask: Some(mask),
            ..Default::default()
        },
    );
    std::fs::write(out.join("abccc_faults.svg"), &svg_faults)?;

    println!("wrote:");
    for f in ["abccc_routes.svg", "abccc_routes.dot", "abccc_faults.svg"] {
        let path = out.join(f);
        println!(
            "  {} ({} bytes)",
            path.display(),
            std::fs::metadata(&path)?.len()
        );
    }
    Ok(())
}
