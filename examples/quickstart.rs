//! Quickstart: build an ABCCC network, look around, route, and run a
//! small simulation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use abccc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ABCCC(n=4, k=2, h=3): 4-port COTS switches, 3-digit addresses,
    // 3 NIC ports per server → groups of m = 2 servers per crossbar.
    let params = AbcccParams::new(4, 2, 3)?;
    println!("building {params} …");
    println!("  servers   : {}", params.server_count());
    println!("  switches  : {}", params.switch_count());
    println!(
        "  diameter  : {} server hops (closed form)",
        params.diameter()
    );

    let topo = Abccc::new(params)?;

    // Addressing: node ids ↔ (cube label, group position).
    let src = NodeId(0);
    let dst = NodeId((params.server_count() - 1) as u32);
    println!(
        "routing {} → {}",
        topo.server_addr(src).display(&params),
        topo.server_addr(dst).display(&params)
    );

    // One-to-one routing (permutation-driven, provably shortest).
    let route = topo.route(src, dst)?;
    route
        .validate(topo.network(), None)
        .map_err(|e| e.to_string())?;
    println!(
        "  path: {} server hops, {} links",
        route.server_hops(topo.network()),
        route.link_hops()
    );

    // Multiple disjoint parallel paths between the same pair.
    let paths =
        abccc::parallel::parallel_routes(&params, topo.server_addr(src), topo.server_addr(dst), 4);
    println!("  {} internally disjoint parallel paths", paths.len());

    // Flow-level simulation of a random permutation workload.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let pairs = dcn_workloads::traffic::random_permutation(topo.network().server_count(), &mut rng);
    let report = FlowSim::new(&topo).run(&pairs)?;
    println!(
        "permutation workload: {} flows, {:.1} Gbps aggregate, {:.3} Gbps per flow",
        report.flows, report.aggregate_rate, report.mean_rate
    );

    // And the headline property: growing the network touches nothing.
    let step = ExpansionStep::grow_order(params)?;
    println!(
        "expansion to {}: +{} servers, +{} switches, {} legacy NICs touched",
        step.to,
        step.new_servers,
        step.new_crossbar_switches + step.new_level_switches,
        step.legacy_nics_added
    );
    assert!(step.legacy_untouched());
    Ok(())
}
