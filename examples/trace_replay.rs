//! Replaying a recorded flow trace through both simulators — the workflow
//! a capacity engineer would use: take last week's flow log, replay it on
//! a candidate topology, read throughput and tail latency before buying
//! hardware.
//!
//! The "recorded" trace here is synthesized (elephant/mice mix rendered to
//! the CSV dialect and parsed back) so the example is self-contained.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use abccc_suite::prelude::*;
use dcn_workloads::{trace, traffic};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = AbcccParams::new(4, 2, 3)?;
    let topo = Abccc::new(params)?;
    let n = topo.network().server_count();

    // 1. Synthesize "last week's log": 200 flows, 10% elephants.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let sized = traffic::elephant_mice(n, 200, 0.10, 2000, 20, &mut rng);
    let csv = trace::write_trace(
        &sized
            .iter()
            .enumerate()
            .map(|(i, &(s, d, size))| trace::TraceFlow {
                src: s,
                dst: d,
                size,
                start_ns: (i as u64 % 20) * 50_000, // staggered arrivals
            })
            .collect::<Vec<_>>(),
    );
    println!("synthesized trace: {} bytes of CSV, 200 flows", csv.len());

    // 2. Parse it back (the real workflow starts here, from a file).
    let flows = trace::parse_trace(&csv, n as u64)?;
    let elephants = flows.iter().filter(|f| f.size >= 2000).count();
    println!("parsed {} flows ({elephants} elephants)", flows.len());

    // 3. Flow-level replay: steady-state fair-share rates.
    let pairs: Vec<_> = flows.iter().map(trace::TraceFlow::pair).collect();
    let flow_report = FlowSim::new(&topo).run(&pairs)?;
    println!(
        "flow level   : {:.1} Gbps aggregate, fairness {:.3}, worst flow {:.3} Gbps",
        flow_report.aggregate_rate,
        flow_report.fairness_index(),
        flow_report.min_rate
    );

    // 4. Packet-level replay with AIMD transports: completion times.
    let specs: Vec<FlowSpec> = flows
        .iter()
        .map(|f| FlowSpec {
            src: f.src,
            dst: f.dst,
            packets: f.size,
            start_ns: f.start_ns,
            gap_ns: None,
        })
        .collect();
    let cfg = PacketSimConfig {
        buffer_packets: 32,
        ..Default::default()
    };
    let pkt = PacketSim::new(&topo, cfg).run_aimd(&specs, dcn_sim::AimdConfig::default())?;
    println!(
        "packet level : {:.2}% loss, p99 latency {:.0} µs, mean FCT {:.1} ms",
        pkt.loss_rate() * 100.0,
        pkt.p99_latency_ns as f64 / 1e3,
        pkt.mean_fct_ns().unwrap_or(0.0) / 1e6,
    );
    let mice_fct: Vec<f64> = pkt
        .per_flow
        .iter()
        .filter(|f| f.offered < 2000 && f.complete())
        .map(|f| f.completion_ns as f64 / 1e6)
        .collect();
    if !mice_fct.is_empty() {
        println!(
            "               mice mean FCT {:.2} ms over {} flows",
            mice_fct.iter().sum::<f64>() / mice_fct.len() as f64,
            mice_fct.len()
        );
    }
    Ok(())
}
