#!/usr/bin/env bash
# Repository pre-merge gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q --offline

echo "== telemetry noop build (feature-gated compile-out)"
cargo check -q -p abccc-suite --features telemetry-noop --offline

echo "== telemetry disabled-path overhead contract (smoke)"
ABCCC_SMOKE=1 cargo bench -q -p abccc-bench --bench telemetry_overhead --offline

echo "== resilience smoke campaign (determinism + nonzero completion)"
cargo build -q -p abccc-cli --offline
CLI=target/debug/abccc-cli
SMOKE=(resilience 4 2 2 --trials 8 --seed 1 --json)
A="$("$CLI" "${SMOKE[@]}")"
B="$("$CLI" "${SMOKE[@]}")"
if [ "$A" != "$B" ]; then
  echo "FAIL: fixed-seed campaign JSON differs between runs" >&2
  exit 1
fi
if ! grep -q '"routed": [1-9]' <<<"$A"; then
  echo "FAIL: smoke campaign routed zero pairs" >&2
  exit 1
fi

echo "== experiments tiny sweep (exit 0, nonzero rows, thread-count determinism)"
EXP_A="$(mktemp -d)"
EXP_B="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B"' EXIT
"$CLI" experiments run --all --preset tiny --threads 1 --json "$EXP_A" >/dev/null
"$CLI" experiments run --all --preset tiny --json "$EXP_B" >/dev/null
for rows in "$EXP_A"/*.json; do
  case "$rows" in *.manifest.json) continue ;; esac
  name="$(basename "$rows")"
  if ! grep -q '[{[]' "$rows" || ! grep -q '"' "$rows"; then
    echo "FAIL: $name holds no rows" >&2
    exit 1
  fi
  if ! cmp -s "$rows" "$EXP_B/$name"; then
    echo "FAIL: $name differs between 1 and N worker threads" >&2
    exit 1
  fi
done
count="$(ls "$EXP_A"/*.json | grep -cv '\.manifest\.json$')"
if [ "$count" -ne 25 ]; then
  echo "FAIL: expected 25 rows artifacts, found $count" >&2
  exit 1
fi

echo "== arena gate (7-family report, 1-vs-4-thread determinism, jellyfish digest)"
ARENA_A="$(mktemp -d)"
ARENA_B="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B" "$ARENA_A" "$ARENA_B"' EXIT
"$CLI" experiments run arena --preset tiny --threads 1 --json "$ARENA_A" >"$ARENA_A/stdout.txt" 2>/dev/null
"$CLI" experiments run arena --preset tiny --threads 4 --json "$ARENA_B" >"$ARENA_B/stdout.txt" 2>/dev/null
if ! cmp -s "$ARENA_A/stdout.txt" "$ARENA_B/stdout.txt"; then
  echo "FAIL: arena stdout differs between 1 and 4 worker threads" >&2
  exit 1
fi
if ! cmp -s "$ARENA_A/arena.json" "$ARENA_B/arena.json"; then
  echo "FAIL: arena rows differ between 1 and 4 worker threads" >&2
  exit 1
fi
for fam in ABCCC BCCC BCube DCell FatTree Jellyfish SpaceShuffle; do
  if ! grep -q "\"structure\": \"$fam(" "$ARENA_A/arena.json"; then
    echo "FAIL: arena rows missing family $fam" >&2
    exit 1
  fi
done
# The native-plane campaign on a fixed-seed Jellyfish pins the random
# graph's wiring: a digest change means the seeded generator's stream
# moved, which silently invalidates every recorded jellyfish result.
JF=(resilience jellyfish:v=16,r=4,seed=7
    --trials 4 --seed 1 --rate 0.1 --pairs 32 --no-throughput --json)
JF_DIGEST="$("$CLI" "${JF[@]}" | sha256sum | cut -d' ' -f1)"
JF_WANT=505700969b5567d1986e45ad7847c1cb8872213d92d9a60ff6408e6367fe9938
if [ "$JF_DIGEST" != "$JF_WANT" ]; then
  echo "FAIL: fixed-seed jellyfish campaign digest moved" >&2
  echo "  want $JF_WANT" >&2
  echo "  got  $JF_DIGEST" >&2
  exit 1
fi

echo "== traffic gate (scenario sweep 1-vs-4-thread determinism, pinned incast digest)"
TRAF_A="$(mktemp -d)"
TRAF_B="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B" "$ARENA_A" "$ARENA_B" "$TRAF_A" "$TRAF_B"' EXIT
"$CLI" experiments run traffic_arena --preset tiny --threads 1 --json "$TRAF_A" >"$TRAF_A/stdout.txt" 2>/dev/null
"$CLI" experiments run traffic_arena --preset tiny --threads 4 --json "$TRAF_B" >"$TRAF_B/stdout.txt" 2>/dev/null
if ! cmp -s "$TRAF_A/stdout.txt" "$TRAF_B/stdout.txt"; then
  echo "FAIL: traffic_arena stdout differs between 1 and 4 worker threads" >&2
  exit 1
fi
if ! cmp -s "$TRAF_A/traffic_arena.json" "$TRAF_B/traffic_arena.json"; then
  echo "FAIL: traffic_arena rows differ between 1 and 4 worker threads" >&2
  exit 1
fi
# A fixed-seed incast through the unified engine pins the packet loop's
# event ordering end to end: injection schedule, per-hop store-and-forward
# arithmetic, FCT accounting, and the JSON field order. A digest change
# means the discrete-event core's behaviour moved.
INCAST=(--json sim run incast abccc 2 1 2 --seed 7)
TRAFFIC_DIGEST="$("$CLI" "${INCAST[@]}" | sha256sum | cut -d' ' -f1)"
TRAFFIC_WANT=5bb517dcc804626e11b5dcc94adc47d407dfd4becfcbb788f9622b21af0fe1c6
if [ "$TRAFFIC_DIGEST" != "$TRAFFIC_WANT" ]; then
  echo "FAIL: fixed-seed incast scenario digest moved" >&2
  echo "  want $TRAFFIC_WANT" >&2
  echo "  got  $TRAFFIC_DIGEST" >&2
  exit 1
fi

echo "== fib gate (compile+query smoke, equivalence suite, shard-count determinism)"
"$CLI" fib compile 2 2 2 | grep -q 'compiled forwarding table'
"$CLI" fib query 2 2 2 0 17 | grep -q 'via compiled table'
cargo test -q -p dcn-fib --test equivalence --offline
FIB_A="$(mktemp -d)"
FIB_B="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B" "$FIB_A" "$FIB_B"' EXIT
FIB_BENCH=(fib bench 2 2 2 --queries 2000 --fail-rate 0.1)
"$CLI" "${FIB_BENCH[@]}" --shards 1 --digest "$FIB_A/digest.json" >/dev/null
"$CLI" "${FIB_BENCH[@]}" --shards 8 --digest "$FIB_B/digest.json" >/dev/null
if ! cmp -s "$FIB_A/digest.json" "$FIB_B/digest.json"; then
  echo "FAIL: fib bench digest differs between 1 and 8 shards" >&2
  exit 1
fi

echo "== scale gate (streaming build, hier-vs-dense digest, estimator determinism)"
# A mid-size instance (ABCCC(8,2,2): 1536 servers) exercises the streaming
# CSR build and both FIB layouts; the bench digest deliberately excludes
# the layout field, so the two runs must agree byte for byte.
SCALE_A="$(mktemp -d)"
SCALE_B="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B" "$FIB_A" "$FIB_B" "$SCALE_A" "$SCALE_B"' EXIT
SCALE_BENCH=(fib bench 8 2 2 --queries 2000 --fail-rate 0.05)
"$CLI" "${SCALE_BENCH[@]}" --layout dense --digest "$SCALE_A/digest.json" >/dev/null
"$CLI" "${SCALE_BENCH[@]}" --layout hier --digest "$SCALE_B/digest.json" >/dev/null
if ! cmp -s "$SCALE_A/digest.json" "$SCALE_B/digest.json"; then
  echo "FAIL: fib bench digest differs between dense and hier layouts" >&2
  exit 1
fi
TOPO_STATS=(--json topo stats abccc 8 2 2 --estimate --samples 32 --seed 5)
SA="$("$CLI" "${TOPO_STATS[@]}")"
SB="$("$CLI" "${TOPO_STATS[@]}")"
if [ "$SA" != "$SB" ]; then
  echo "FAIL: fixed-seed sampled topo stats differ between runs" >&2
  exit 1
fi
if ! grep -q '"diameter_lower_bound"' <<<"$SA"; then
  echo "FAIL: sampled topo stats missing diameter_lower_bound" >&2
  exit 1
fi

echo "== serve gate (loadgen digest determinism, shard invariance, clean serve exit)"
# The loopback loadgen's reply digest must be byte-identical across runs
# and shard counts for a fixed seed: the server's thread interleavings,
# frame coalescing, and sharded batch execution are all invisible in the
# reply bytes. `serve` with stdin at EOF must bind, drain, and exit 0.
SERVE_GEN=(--json loadgen 2 2 2 --connections 4 --frames 32 --batch 8 --window 4 --seed 11)
SV_A="$("$CLI" "${SERVE_GEN[@]}" --shards 1 | grep '"digest"')"
SV_B="$("$CLI" "${SERVE_GEN[@]}" --shards 1 | grep '"digest"')"
SV_C="$("$CLI" "${SERVE_GEN[@]}" --shards 8 | grep '"digest"')"
if [ "$SV_A" != "$SV_B" ]; then
  echo "FAIL: fixed-seed loadgen digest differs between runs" >&2
  exit 1
fi
if [ "$SV_A" != "$SV_C" ]; then
  echo "FAIL: loadgen digest differs between 1 and 8 shards" >&2
  exit 1
fi
if ! "$CLI" serve 2 1 2 --port 0 </dev/null | grep -q 'listening on 127.0.0.1:'; then
  echo "FAIL: serve did not bind and drain cleanly on stdin EOF" >&2
  exit 1
fi
# The route_server experiment's artifact is its own shard-invariance pin:
# the same (connections, batch) combo at different shard counts must
# reproduce the same digest (seeds derive from the combo, not the point).
SERVE_EXP="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B" "$ARENA_A" "$ARENA_B" "$TRAF_A" "$TRAF_B" "$FIB_A" "$FIB_B" "$SCALE_A" "$SCALE_B" "$SERVE_EXP"' EXIT
"$CLI" experiments run route_server --preset tiny --json "$SERVE_EXP" >/dev/null
SERVE_DIGESTS="$(grep -o '"digest": "[^"]*"' "$SERVE_EXP/route_server.json" | sort | uniq -c | awk '{print $1}' | sort -u)"
if [ "$SERVE_DIGESTS" != "2" ]; then
  echo "FAIL: route_server digests are not paired across shard counts" >&2
  exit 1
fi

echo "== perf sentinel (record + self-diff exits 0, causal trace valid + stable)"
# A two-experiment subset keeps the gate fast; diffing a fresh measurement
# against baselines recorded seconds earlier must find zero regressions,
# or the noise gates are mistuned.
PERF_DIR="$(mktemp -d)"
trap 'rm -rf "$EXP_A" "$EXP_B" "$FIB_A" "$FIB_B" "$SCALE_A" "$SCALE_B" "$PERF_DIR"' EXIT
SENTINEL=(table1_properties fig7_faults --preset tiny --runs 2 --baselines "$PERF_DIR/baselines")
"$CLI" perf record "${SENTINEL[@]}" >/dev/null
if ! "$CLI" perf diff "${SENTINEL[@]}" >/dev/null; then
  echo "FAIL: perf diff against a just-recorded baseline reported regressions" >&2
  exit 1
fi
# The causal trace must be valid Chrome Trace JSON with a span count that
# is stable across runs for a fixed seed (single-threaded: the topology
# cache races builders under parallelism, legitimately duplicating
# bench.cache.build spans).
TRACE=(experiments run table1_properties fig7_faults --preset tiny --threads 1)
"$CLI" --trace-out "$PERF_DIR/trace_a.json" "${TRACE[@]}" >/dev/null
"$CLI" --trace-out "$PERF_DIR/trace_b.json" "${TRACE[@]}" >/dev/null
STAT_A="$("$CLI" perf trace-stat "$PERF_DIR/trace_a.json")"
STAT_B="$("$CLI" perf trace-stat "$PERF_DIR/trace_b.json")"
if ! grep -q 'valid Chrome trace' <<<"$STAT_A"; then
  echo "FAIL: --trace-out did not produce a valid Chrome trace" >&2
  exit 1
fi
if [ "${STAT_A#*: }" != "${STAT_B#*: }" ]; then
  echo "FAIL: span counts differ between fixed-seed single-threaded runs" >&2
  echo "  a: $STAT_A" >&2
  echo "  b: $STAT_B" >&2
  exit 1
fi

echo "All checks passed."
