#!/usr/bin/env bash
# Repository pre-merge gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q --offline

echo "== telemetry noop build (feature-gated compile-out)"
cargo check -q -p abccc-suite --features telemetry-noop --offline

echo "== telemetry disabled-path overhead contract (smoke)"
ABCCC_SMOKE=1 cargo bench -q -p abccc-bench --bench telemetry_overhead --offline

echo "All checks passed."
