#!/usr/bin/env bash
# Repository pre-merge gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q --offline

echo "== telemetry noop build (feature-gated compile-out)"
cargo check -q -p abccc-suite --features telemetry-noop --offline

echo "== telemetry disabled-path overhead contract (smoke)"
ABCCC_SMOKE=1 cargo bench -q -p abccc-bench --bench telemetry_overhead --offline

echo "== resilience smoke campaign (determinism + nonzero completion)"
cargo build -q -p abccc-cli --offline
CLI=target/debug/abccc-cli
SMOKE=(resilience 4 2 2 --trials 8 --seed 1 --json)
A="$("$CLI" "${SMOKE[@]}")"
B="$("$CLI" "${SMOKE[@]}")"
if [ "$A" != "$B" ]; then
  echo "FAIL: fixed-seed campaign JSON differs between runs" >&2
  exit 1
fi
if ! grep -q '"routed": [1-9]' <<<"$A"; then
  echo "FAIL: smoke campaign routed zero pairs" >&2
  exit 1
fi

echo "All checks passed."
