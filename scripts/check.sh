#!/usr/bin/env bash
# Repository pre-merge gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q --offline

echo "All checks passed."
