//! Cross-crate integration: disseminating a block along the broadcast tree
//! at packet level, and reducing it back along the aggregation schedule.

use abccc::{broadcast, Abccc, AbcccParams};
use dcn_sim::{FlowSpec, PacketSim, PacketSimConfig};
use netgraph::NodeId;

/// Every tree edge becomes one parent→child transfer; rounds are staggered
/// by depth so a child only forwards after it could have received.
fn tree_flows(
    p: &AbcccParams,
    tree: &broadcast::BroadcastTree,
    packets_per_edge: u64,
    round_ns: u64,
) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for raw in 0..p.server_count() {
        let id = NodeId(raw as u32);
        if !tree.contains(id) {
            continue;
        }
        if let Some((parent, _)) = tree.parent(id) {
            let depth = (tree.path_to(id).len() - 1) as u64;
            flows.push(FlowSpec {
                src: parent,
                dst: id,
                packets: packets_per_edge,
                start_ns: (depth - 1) * round_ns,
                gap_ns: None,
            });
        }
    }
    flows
}

#[test]
fn broadcast_dissemination_delivers_to_every_server() {
    let p = AbcccParams::new(3, 1, 2).unwrap(); // 18 servers
    let topo = Abccc::new(p).unwrap();
    let src = NodeId(0);
    let tree = broadcast::one_to_all(&p, src).unwrap();
    let cfg = PacketSimConfig {
        buffer_packets: 256,
        ..Default::default()
    };
    let packets_per_edge = 20;
    // One round ≈ time to push the block one hop (2 links per server hop).
    let round_ns = 2 * (packets_per_edge + 2) * cfg.tx_time_ns();
    let flows = tree_flows(&p, &tree, packets_per_edge, round_ns);
    assert_eq!(flows.len() as u64, p.server_count() - 1);

    let report = PacketSim::new(&topo, cfg).run(&flows).unwrap();
    assert_eq!(report.dropped, 0, "dissemination must be lossless");
    assert_eq!(report.delivered, (p.server_count() - 1) * packets_per_edge);
    // Completion is bounded by depth rounds plus slack for contention.
    let bound = u64::from(tree.depth()) * round_ns * 2;
    assert!(
        report.makespan_ns <= bound,
        "makespan {} exceeds {} (depth {})",
        report.makespan_ns,
        bound,
        tree.depth()
    );
}

#[test]
fn broadcast_beats_naive_unicast_star_in_sender_load() {
    // The tree sends N−1 messages spread over the fabric; a unicast star
    // pushes N−1 full transfers through the source's h NICs. Compare the
    // source's transmitted packet count.
    let p = AbcccParams::new(3, 1, 2).unwrap();
    let tree = broadcast::one_to_all(&p, NodeId(0)).unwrap();
    let mut tree_src_sends = 0u64;
    for raw in 0..p.server_count() {
        let id = NodeId(raw as u32);
        if id != NodeId(0) && tree.contains(id) {
            if let Some((parent, _)) = tree.parent(id) {
                if parent == NodeId(0) {
                    tree_src_sends += 1;
                }
            }
        }
    }
    let unicast_src_sends = p.server_count() - 1;
    // Direct children: up to m−1 via the crossbar plus n−1 per owned level.
    let child_bound = u64::from(p.group_size() - 1) + u64::from(p.h() - 1) * u64::from(p.n() - 1);
    assert!(
        tree_src_sends <= child_bound,
        "tree source fan-out {tree_src_sends} exceeds the structural bound {child_bound}"
    );
    assert!(tree_src_sends < unicast_src_sends / 2);
}

#[test]
fn aggregation_schedule_is_packet_feasible() {
    // Run the aggregation rounds deepest-first as packet flows; every
    // partial result reaches the root losslessly.
    let p = AbcccParams::new(2, 2, 2).unwrap(); // 24 servers
    let topo = Abccc::new(p).unwrap();
    let root = NodeId(3);
    let tree = broadcast::one_to_all(&p, root).unwrap();
    let rounds = tree.aggregation_rounds();
    let cfg = PacketSimConfig {
        buffer_packets: 256,
        ..Default::default()
    };
    let round_ns = 40 * cfg.tx_time_ns();
    let mut flows = Vec::new();
    for (i, round) in rounds.iter().enumerate() {
        for &node in round {
            let (parent, _) = tree.parent(node).unwrap();
            flows.push(FlowSpec {
                src: node,
                dst: parent,
                packets: 5,
                start_ns: i as u64 * round_ns,
                gap_ns: None,
            });
        }
    }
    let report = PacketSim::new(&topo, cfg).run(&flows).unwrap();
    assert_eq!(report.dropped, 0);
    assert_eq!(report.delivered, (p.server_count() - 1) * 5);
}
