//! Property tests for the addressing scheme over random parameterizations
//! — the codec layer everything else stands on.

use abccc::{AbcccParams, CubeLabel, ServerAddr, SwitchAddr};
use netgraph::NodeId;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = AbcccParams> {
    (2u32..=6, 0u32..=4, 2u32..=6)
        .prop_map(|(n, k, h)| AbcccParams::new(n, k, h).expect("valid"))
        .prop_filter("bounded ids", |p| {
            p.server_count() + p.switch_count() <= u64::from(u32::MAX)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn server_id_codec_roundtrips(p in params_strategy(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let raw = rng.gen_range(0..p.server_count());
            let id = NodeId(raw as u32);
            let addr = ServerAddr::from_node_id(&p, id);
            prop_assert!(addr.label.0 < p.label_space());
            prop_assert!(addr.pos < p.group_size());
            prop_assert_eq!(addr.node_id(&p), id);
        }
    }

    #[test]
    fn switch_id_codec_roundtrips(p in params_strategy(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        prop_assume!(p.switch_count() > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let raw = p.server_count() + rng.gen_range(0..p.switch_count());
            let id = NodeId(raw as u32);
            let addr = SwitchAddr::from_node_id(&p, id);
            prop_assert_eq!(addr.node_id(&p), id);
        }
    }

    #[test]
    fn digits_and_labels_are_inverse(p in params_strategy(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let label = CubeLabel(rng.gen_range(0..p.label_space()));
            let digits = label.digits(&p);
            prop_assert_eq!(digits.len() as u32, p.levels());
            prop_assert!(digits.iter().all(|&d| d < p.n()));
            prop_assert_eq!(CubeLabel::from_digits(&p, &digits), label);
        }
    }

    #[test]
    fn with_digit_changes_exactly_one_position(p in params_strategy(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let label = CubeLabel(rng.gen_range(0..p.label_space()));
        let level = rng.gen_range(0..p.levels());
        let d = rng.gen_range(0..p.n());
        let new = label.with_digit(&p, level, d);
        prop_assert_eq!(new.digit(&p, level), d);
        for i in 0..p.levels() {
            if i != level {
                prop_assert_eq!(new.digit(&p, i), label.digit(&p, i));
            }
        }
        // rest_index is invariant under digit changes at that level.
        prop_assert_eq!(new.rest_index(&p, level), label.rest_index(&p, level));
    }

    #[test]
    fn differing_levels_is_symmetric_and_exact(p in params_strategy(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = CubeLabel(rng.gen_range(0..p.label_space()));
        let b = CubeLabel(rng.gen_range(0..p.label_space()));
        let dab = a.differing_levels(&p, b);
        prop_assert_eq!(&dab, &b.differing_levels(&p, a));
        for i in 0..p.levels() {
            prop_assert_eq!(dab.contains(&i), a.digit(&p, i) != b.digit(&p, i));
        }
        prop_assert_eq!(dab.is_empty(), a == b);
    }

    #[test]
    fn params_display_parse_roundtrip(p in params_strategy()) {
        let text = p.to_string();
        let back: AbcccParams = text.parse().expect("parse own display");
        prop_assert_eq!(back, p);
    }
}
