//! Property tests for the extension features: broadcast trees, hop-by-hop
//! forwarding, VLB routing — over randomized parameters.

use abccc::{
    broadcast, forwarding, routing, Abccc, AbcccParams, DigitRouter, PermStrategy, ServerAddr,
    VlbRouter,
};
use netgraph::{NodeId, Topology};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn params_strategy() -> impl Strategy<Value = AbcccParams> {
    (2u32..=4, 1u32..=3, 2u32..=4)
        .prop_map(|(n, k, h)| AbcccParams::new(n, k, h).expect("valid"))
        .prop_filter("materializable", |p| p.server_count() <= 400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn broadcast_tree_spans_and_stays_near_optimal(
        p in params_strategy(),
        seed in any::<u64>(),
    ) {
        let topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let src = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let tree = broadcast::one_to_all(&p, src).expect("tree");
        prop_assert!(tree.validate(&p).is_ok());
        prop_assert_eq!(tree.member_count() as u64, p.server_count());
        let ecc = netgraph::bfs::server_eccentricity(topo.network(), src).expect("connected");
        prop_assert!(tree.depth() >= ecc);
        prop_assert!(tree.depth() <= ecc + 2);
    }

    #[test]
    fn one_to_many_reaches_exactly_its_destinations(
        p in params_strategy(),
        seed in any::<u64>(),
        count in 1usize..12,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let src = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let dests: Vec<NodeId> = (0..count)
            .map(|_| NodeId(rng.gen_range(0..p.server_count()) as u32))
            .collect();
        let tree = broadcast::one_to_many(&p, src, &dests).expect("tree");
        prop_assert!(tree.validate(&p).is_ok());
        for &d in &dests {
            prop_assert!(tree.contains(d));
        }
        // Leaves are all destinations (no dangling branches).
        let mut needed: std::collections::HashSet<NodeId> = dests.iter().copied().collect();
        needed.insert(src);
        let mut interior = std::collections::HashSet::new();
        for raw in 0..p.server_count() {
            let id = NodeId(raw as u32);
            if tree.contains(id) {
                if let Some((par, _)) = tree.parent(id) {
                    interior.insert(par);
                }
            }
        }
        for raw in 0..p.server_count() {
            let id = NodeId(raw as u32);
            if tree.contains(id) && !interior.contains(&id) {
                prop_assert!(needed.contains(&id), "leaf {id} is not a destination");
            }
        }
    }

    #[test]
    fn forwarding_replays_every_strategy(
        p in params_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for strat in [
            PermStrategy::DestinationAware,
            PermStrategy::Ascending,
            PermStrategy::Greedy,
            PermStrategy::Random(seed),
        ] {
            let s = ServerAddr::from_node_id(
                &p,
                NodeId(rng.gen_range(0..p.server_count()) as u32),
            );
            let d = ServerAddr::from_node_id(
                &p,
                NodeId(rng.gen_range(0..p.server_count()) as u32),
            );
            let control = DigitRouter::new(strat).route_addrs(&p, s, d);
            let header = forwarding::ForwardingHeader::new(&p, s, d, &strat);
            let data = forwarding::forward(&p, s, header).expect("forward");
            prop_assert_eq!(control.nodes(), &data[..]);
        }
    }

    #[test]
    fn vlb_routes_always_valid(p in params_strategy(), seed in any::<u64>()) {
        let topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            if s == d {
                continue;
            }
            let r = VlbRouter::route_addrs_with(
                &p,
                ServerAddr::from_node_id(&p, s),
                ServerAddr::from_node_id(&p, d),
                &mut rng,
            );
            prop_assert!(r.validate(topo.network(), None).is_ok());
            prop_assert!(routing::hops(&r) as u64 <= 2 * p.diameter());
        }
    }

    #[test]
    fn aggregation_rounds_cover_all_servers(
        p in params_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let root = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let tree = broadcast::one_to_all(&p, root).expect("tree");
        let rounds = tree.aggregation_rounds();
        let total: usize = rounds.iter().map(Vec::len).sum();
        prop_assert_eq!(total as u64, p.server_count() - 1);
    }
}
