//! Property tests for ABCCC routing: validity, optimality, symmetry and
//! strategy-independence of correctness over randomized parameters and
//! endpoint pairs.

use abccc::{routing, Abccc, AbcccParams, DigitRouter, PermStrategy, ServerAddr};
use netgraph::{NodeId, Topology};
use proptest::prelude::*;

/// Small-but-varied parameterizations (≤ ~600 servers when materialized).
fn params_strategy() -> impl Strategy<Value = AbcccParams> {
    (2u32..=4, 1u32..=3, 2u32..=5)
        .prop_map(|(n, k, h)| AbcccParams::new(n, k, h).expect("valid"))
        .prop_filter("materializable", |p| p.server_count() <= 600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routes_are_valid_and_optimal(p in params_strategy(), seed in any::<u64>()) {
        let topo = Abccc::new(p).expect("build");
        let net = topo.network();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let sa = ServerAddr::from_node_id(&p, s);
            let da = ServerAddr::from_node_id(&p, d);
            let route = topo.route(s, d).expect("route");
            prop_assert!(route.validate(net, None).is_ok());
            prop_assert_eq!(route.src(), s);
            prop_assert_eq!(route.dst(), d);
            let bfs = netgraph::bfs::server_hop_distances(net, s, None);
            prop_assert_eq!(
                routing::hops(&route) as u64,
                u64::from(bfs[d.index()]),
                "not shortest for {} -> {}", sa.display(&p), da.display(&p)
            );
            prop_assert_eq!(routing::distance(&p, sa, da), u64::from(bfs[d.index()]));
        }
    }

    #[test]
    fn distance_is_a_metric(p in params_strategy(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rand_addr = |rng: &mut rand::rngs::StdRng| {
            ServerAddr::from_node_id(&p, NodeId(rng.gen_range(0..p.server_count()) as u32))
        };
        for _ in 0..24 {
            let a = rand_addr(&mut rng);
            let b = rand_addr(&mut rng);
            let c = rand_addr(&mut rng);
            let dab = routing::distance(&p, a, b);
            // identity & symmetry
            prop_assert_eq!(routing::distance(&p, a, a), 0);
            prop_assert_eq!(dab, routing::distance(&p, b, a));
            prop_assert!(dab <= p.diameter());
            // triangle inequality
            prop_assert!(dab <= routing::distance(&p, a, c) + routing::distance(&p, c, b));
            if a != b {
                prop_assert!(dab >= 1);
            }
        }
    }

    #[test]
    fn all_strategies_route_correctly(p in params_strategy(), seed in any::<u64>()) {
        let topo = Abccc::new(p).expect("build");
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            let sa = ServerAddr::from_node_id(&p, s);
            let da = ServerAddr::from_node_id(&p, d);
            let optimal = routing::distance(&p, sa, da);
            for strat in PermStrategy::all() {
                let r = DigitRouter::new(strat).route_addrs(&p, sa, da);
                prop_assert!(r.validate(topo.network(), None).is_ok(), "{}", strat.label());
                // Every strategy is within the trivial worst case …
                prop_assert!(routing::hops(&r) as u64 <= 2 * u64::from(p.levels()) + 1);
                // … and never better than optimal.
                prop_assert!(routing::hops(&r) as u64 >= optimal);
            }
        }
    }

    #[test]
    fn fault_free_detour_router_equals_primary(p in params_strategy(), seed in any::<u64>()) {
        let topo = Abccc::new(p).expect("build");
        let mask = netgraph::FaultMask::new(topo.network());
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
        prop_assert_eq!(
            topo.route_avoiding(s, d, &mask).expect("route"),
            topo.route(s, d).expect("route")
        );
    }
}
