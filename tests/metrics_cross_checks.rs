//! Cross-checks between closed-form metrics and brute-force graph
//! computation, for every family — the internal-consistency safety net of
//! this reproduction (the paper body was unavailable; see DESIGN.md).

use abccc::{Abccc, AbcccParams};
use dcn_baselines::*;
use dcn_metrics::{bisection, CostModel, TopologyStats};
use netgraph::Topology;

#[test]
fn abccc_diameter_formula_vs_bfs_wide_sweep() {
    for n in [2, 3] {
        for k in 1..=3u32 {
            for h in 2..=(k + 3) {
                let p = AbcccParams::new(n, k, h).unwrap();
                if p.server_count() > 700 {
                    continue;
                }
                let t = Abccc::new(p).unwrap();
                assert_eq!(
                    netgraph::bfs::server_diameter(t.network()),
                    Some(p.diameter() as u32),
                    "{p}"
                );
            }
        }
    }
}

#[test]
fn abccc_bisection_formula_vs_maxflow() {
    for (n, k, h) in [
        (2, 1, 2),
        (2, 2, 2),
        (2, 2, 3),
        (2, 3, 3),
        (4, 1, 2),
        (4, 1, 3),
    ] {
        let p = AbcccParams::new(n, k, h).unwrap();
        let t = Abccc::new(p).unwrap();
        assert_eq!(
            bisection::exact_bisection_by_id(t.network()),
            p.bisection_width().unwrap(),
            "{p}"
        );
    }
}

#[test]
fn baseline_diameters() {
    let bc = BCube::new(BCubeParams::new(3, 2).unwrap()).unwrap();
    assert_eq!(netgraph::bfs::server_diameter(bc.network()), Some(3));
    let hc = Hypercube::new(HypercubeParams::new(3, 2).unwrap()).unwrap();
    assert_eq!(netgraph::bfs::server_diameter(hc.network()), Some(2));
    let ft = FatTree::new(FatTreeParams::new(4).unwrap()).unwrap();
    assert_eq!(netgraph::bfs::server_diameter(ft.network()), Some(1));
    let dc = DCell::new(DCellParams::new(2, 2).unwrap()).unwrap();
    let d = netgraph::bfs::server_diameter(dc.network()).unwrap();
    assert!(u64::from(d) <= DCellParams::new(2, 2).unwrap().diameter_bound());
}

#[test]
fn odd_n_bisection_is_between_halves() {
    // No closed form for odd n; the exact cut must lie within the obvious
    // envelope floor/ceil of n^(k+1)/2.
    let p = AbcccParams::new(3, 1, 2).unwrap();
    assert_eq!(p.bisection_width(), None);
    let t = Abccc::new(p).unwrap();
    let cut = bisection::exact_bisection_by_id(t.network());
    let labels = p.label_space();
    assert!(cut >= labels / 3, "cut {cut} too small");
    assert!(cut <= labels, "cut {cut} too large");
}

#[test]
fn apl_is_below_diameter_and_above_one() {
    for (n, k, h) in [(3, 1, 2), (2, 2, 3), (4, 1, 4)] {
        let p = AbcccParams::new(n, k, h).unwrap();
        let t = Abccc::new(p).unwrap();
        let stats = TopologyStats::measure(&t);
        let apl = stats.avg_path_length.unwrap();
        assert!(apl > 1.0, "{p}: {apl}");
        assert!(apl <= p.diameter() as f64, "{p}: {apl}");
    }
}

#[test]
fn cost_ordering_matches_the_paper_narrative() {
    // At comparable server counts: BCCC/ABCCC(h=2) cheapest per server,
    // then ABCCC h=3, then BCube, with the generalized hypercube far out.
    let cost = CostModel::default();
    let per_server = |stats: TopologyStats| cost.capex(&stats).per_server();
    let h2 = per_server(TopologyStats::quick(
        &Abccc::new(AbcccParams::new(4, 3, 2).unwrap()).unwrap(),
    ));
    let h3 = per_server(TopologyStats::quick(
        &Abccc::new(AbcccParams::new(4, 3, 3).unwrap()).unwrap(),
    ));
    let bcube = per_server(TopologyStats::quick(
        &BCube::new(BCubeParams::new(4, 4).unwrap()).unwrap(),
    ));
    let ghc = per_server(TopologyStats::quick(
        &Hypercube::new(HypercubeParams::new(4, 5).unwrap()).unwrap(),
    ));
    assert!(h2 < h3, "h2 {h2} vs h3 {h3}");
    assert!(h3 < bcube, "h3 {h3} vs bcube {bcube}");
    assert!(bcube < ghc, "bcube {bcube} vs ghc {ghc}");
}

#[test]
fn quick_stats_equal_closed_forms_across_families() {
    let p = BCubeParams::new(4, 2).unwrap();
    let s = TopologyStats::quick(&BCube::new(p).unwrap());
    assert_eq!(s.servers, p.server_count());
    assert_eq!(s.switches, p.switch_count());
    assert_eq!(s.wires, p.wire_count());

    let fp = FatTreeParams::new(6).unwrap();
    let fs = TopologyStats::quick(&FatTree::new(fp).unwrap());
    assert_eq!(fs.servers, fp.server_count());
    assert_eq!(fs.switches, fp.switch_count());
    assert_eq!(fs.wires, fp.wire_count());

    let dp = DCellParams::new(3, 2).unwrap();
    let ds = TopologyStats::quick(&DCell::new(dp.clone()).unwrap());
    assert_eq!(ds.servers, dp.server_count());
    assert_eq!(ds.wires, dp.wire_count());

    let hp = HypercubeParams::new(3, 3).unwrap();
    let hs = TopologyStats::quick(&Hypercube::new(hp).unwrap());
    assert_eq!(hs.servers, hp.server_count());
    assert_eq!(hs.wires, hp.wire_count());
}
