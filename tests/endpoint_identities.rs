//! Cross-crate structural identities: the ABCCC family must degenerate to
//! its two published endpoints *exactly* — same id layout, same link set —
//! and the BCCC wrapper must be the `h = 2` member.

use abccc::{Abccc, AbcccParams};
use dcn_baselines::{BCube, BCubeParams, Bccc, BcccParams};
use netgraph::Topology;

fn assert_same_network(a: &netgraph::Network, b: &netgraph::Network) {
    assert_eq!(a.server_count(), b.server_count());
    assert_eq!(a.switch_count(), b.switch_count());
    assert_eq!(a.link_count(), b.link_count());
    for link in a.links() {
        assert!(
            b.find_link(link.a, link.b).is_some(),
            "link {} – {} missing",
            link.a,
            link.b
        );
    }
}

#[test]
fn abccc_h2_is_bccc() {
    for (n, k) in [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2)] {
        let a = Abccc::new(AbcccParams::new(n, k, 2).unwrap()).unwrap();
        let b = Bccc::new(BcccParams::new(n, k).unwrap()).unwrap();
        assert_same_network(a.network(), b.network());
    }
}

#[test]
fn abccc_hk2_is_bcube() {
    for (n, k) in [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2), (2, 3)] {
        let a = Abccc::new(AbcccParams::new(n, k, k + 2).unwrap()).unwrap();
        let b = BCube::new(BCubeParams::new(n, k).unwrap()).unwrap();
        assert_same_network(a.network(), b.network());
    }
}

#[test]
fn oversized_h_also_degenerates_to_bcube() {
    // Any h ≥ k + 2 gives group size 1; extra ports simply stay unused.
    let a = Abccc::new(AbcccParams::new(3, 1, 8).unwrap()).unwrap();
    let b = BCube::new(BCubeParams::new(3, 1).unwrap()).unwrap();
    assert_same_network(a.network(), b.network());
}

#[test]
fn abccc_routing_agrees_with_bcube_routing_at_the_endpoint() {
    let pa = AbcccParams::new(3, 2, 4).unwrap();
    let a = Abccc::new(pa).unwrap();
    let b = BCube::new(BCubeParams::new(3, 2).unwrap()).unwrap();
    for s in 0..pa.server_count() {
        for d in (0..pa.server_count()).step_by(7) {
            let (s, d) = (netgraph::NodeId(s as u32), netgraph::NodeId(d as u32));
            let ra = a.route(s, d).unwrap();
            let rb = b.route(s, d).unwrap();
            // Same length always (both shortest); same node sequence when
            // the correction orders coincide (ascending == cyclic at m=1).
            assert_eq!(ra.server_hops(a.network()), rb.server_hops(b.network()));
        }
    }
}

#[test]
fn bccc_diameter_formula_is_2k_plus_2() {
    for (n, k) in [(2, 1), (2, 2), (3, 1), (4, 2)] {
        let p = BcccParams::new(n, k).unwrap();
        assert_eq!(p.diameter(), 2 * u64::from(k) + 2);
        let t = Bccc::new(p).unwrap();
        assert_eq!(netgraph::bfs::server_diameter(t.network()), Some(2 * k + 2));
    }
}
