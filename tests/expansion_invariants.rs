//! Property tests for incremental expansion: the grown network must embed
//! the old one exactly, the bill of materials must add up, and legacy
//! hardware must never be touched.

use abccc::{expansion, Abccc, AbcccParams, ExpansionStep};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = AbcccParams> {
    (2u32..=4, 1u32..=2, 2u32..=4)
        .prop_map(|(n, k, h)| AbcccParams::new(n, k, h).expect("valid"))
        .prop_filter("grown size materializable", |p| {
            p.grown().map(|g| g.server_count() <= 2000).unwrap_or(false)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grown_network_embeds_old_exactly(p in params_strategy()) {
        let old = Abccc::new(p).expect("build");
        let new = Abccc::new(p.grown().expect("grow")).expect("build");
        prop_assert!(expansion::verify_embedding(&old, &new).is_ok(),
            "{:?}", expansion::verify_embedding(&old, &new));
    }

    #[test]
    fn ledger_is_consistent(p in params_strategy()) {
        let s = ExpansionStep::grow_order(p).expect("plan");
        prop_assert!(s.legacy_untouched());
        prop_assert_eq!(s.new_servers, s.to.server_count() - p.server_count());
        prop_assert_eq!(s.new_cables, s.to.wire_count() - p.wire_count());
        prop_assert_eq!(
            s.new_crossbar_switches + s.new_level_switches,
            s.to.switch_count() - p.switch_count()
        );
        // Exactly one class of legacy port is used per step, once per
        // legacy cube label.
        prop_assert_eq!(
            s.legacy_server_ports_newly_used + s.legacy_crossbar_ports_newly_used,
            p.label_space()
        );
    }

    #[test]
    fn multi_step_schedules_chain(p in params_strategy()) {
        let plan = ExpansionStep::schedule(p, 2).expect("plan");
        prop_assert_eq!(plan.len(), 2);
        prop_assert_eq!(plan[0].from, p);
        prop_assert_eq!(plan[0].to, plan[1].from);
        prop_assert_eq!(plan[1].to.k(), p.k() + 2);
        // Growth is strictly monotone in servers and switches.
        for s in &plan {
            prop_assert!(s.to.server_count() > s.from.server_count());
            prop_assert!(s.new_cables > 0);
        }
    }

    #[test]
    fn diameter_growth_is_gentle(p in params_strategy()) {
        // One order step adds at most 2 to the diameter (one new level
        // crossing plus at most one extra group move) — except at the
        // BCube→crossbar transition (m: 1 → 2), where the `+m` term enters
        // the formula for the first time and the step is +3.
        let g = p.grown().expect("grow");
        prop_assert!(g.diameter() >= p.diameter());
        let bound = if p.group_size() == 1 && g.group_size() == 2 { 3 } else { 2 };
        prop_assert!(g.diameter() <= p.diameter() + bound);
    }
}

#[test]
fn embedding_detects_tampering() {
    // Sanity for the verifier itself: a network that is *not* the grown
    // version must be rejected.
    let old = Abccc::new(AbcccParams::new(2, 1, 2).unwrap()).unwrap();
    let wrong_h = Abccc::new(AbcccParams::new(2, 2, 3).unwrap()).unwrap();
    assert!(expansion::verify_embedding(&old, &wrong_h).is_err());
    let wrong_n = Abccc::new(AbcccParams::new(3, 2, 2).unwrap()).unwrap();
    assert!(expansion::verify_embedding(&old, &wrong_n).is_err());
}
