//! Cross-crate simulator invariants: conservation laws of the flow-level
//! allocator and the packet-level event loop, on randomized topologies and
//! workloads.

use abccc::{Abccc, AbcccParams};
use dcn_sim::{DirectedLink, FlowSim};
use dcn_sim::{FlowSpec, PacketSim, PacketSimConfig};
use netgraph::Topology;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn params_strategy() -> impl Strategy<Value = AbcccParams> {
    (2u32..=4, 1u32..=2, 2u32..=4)
        .prop_map(|(n, k, h)| AbcccParams::new(n, k, h).expect("valid"))
        .prop_filter("materializable", |p| p.server_count() <= 300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn maxmin_never_oversubscribes(p in params_strategy(), seed in any::<u64>()) {
        let topo = Abccc::new(p).expect("build");
        let net = topo.network();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = net.server_count();
        let pairs = dcn_workloads::traffic::uniform_random(n, 2 * n, &mut rng);
        let report = FlowSim::new(&topo).run(&pairs).expect("run");

        // Re-derive per-directed-link load and check against capacity.
        let mut load = vec![0.0f64; net.link_count() * 2];
        for (&(s, d), rate) in pairs.iter().zip(&report.rates) {
            if !rate.is_finite() {
                continue;
            }
            let route = topo.route(s, d).expect("route");
            for dl in DirectedLink::of_route(net, &route) {
                load[dl.index()] += rate;
            }
        }
        for (i, l) in load.iter().enumerate() {
            let cap = net.link(netgraph::LinkId((i / 2) as u32)).capacity;
            prop_assert!(*l <= cap + 1e-6, "directed link {i} carries {l} > {cap}");
        }
        // Max-min specific: every flow is bottlenecked somewhere (its rate
        // cannot be raised without a saturated link on its path).
        for (&(s, d), rate) in pairs.iter().zip(&report.rates) {
            if !rate.is_finite() {
                continue;
            }
            let route = topo.route(s, d).expect("route");
            let bottlenecked = DirectedLink::of_route(net, &route).iter().any(|dl| {
                let cap = net.link(dl.link).capacity;
                load[dl.index()] >= cap - 1e-6
            });
            prop_assert!(bottlenecked, "flow {s}->{d} at {rate} has slack everywhere");
        }
    }

    #[test]
    fn packetsim_conserves_packets(p in params_strategy(), seed in any::<u64>()) {
        let topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = topo.network().server_count();
        let flows: Vec<FlowSpec> = (0..8)
            .map(|_| {
                let s = rng.gen_range(0..n) as u32;
                let d = loop {
                    let d = rng.gen_range(0..n) as u32;
                    if d != s {
                        break d;
                    }
                };
                FlowSpec::bulk(netgraph::NodeId(s), netgraph::NodeId(d), 30)
            })
            .collect();
        let offered: u64 = flows.iter().map(|f| f.packets).sum();
        let cfg = PacketSimConfig { buffer_packets: 4, ..Default::default() };
        let report = PacketSim::new(&topo, cfg).run(&flows).expect("run");
        prop_assert_eq!(report.delivered + report.dropped, offered);
        prop_assert!(report.p50_latency_ns <= report.p99_latency_ns);
        prop_assert!(report.p99_latency_ns <= report.max_latency_ns);
        prop_assert!(report.makespan_ns >= report.max_latency_ns);
    }

    #[test]
    fn flow_and_packet_sims_agree_on_feasibility(p in params_strategy(), seed in any::<u64>()) {
        // If max-min gives every flow a positive rate, the packet sim with
        // generous buffers must deliver everything.
        let topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = topo.network().server_count();
        let pairs = dcn_workloads::traffic::random_permutation(n, &mut rng);
        let sample = &pairs[..8.min(pairs.len())];
        let flow = FlowSim::new(&topo).run(sample).expect("run");
        prop_assert!(flow.min_rate > 0.0);
        let specs: Vec<FlowSpec> = sample
            .iter()
            .map(|&(s, d)| FlowSpec::bulk(s, d, 20))
            .collect();
        let cfg = PacketSimConfig { buffer_packets: 4096, ..Default::default() };
        let pkt = PacketSim::new(&topo, cfg).run(&specs).expect("run");
        prop_assert_eq!(pkt.dropped, 0);
        prop_assert_eq!(pkt.delivered, specs.len() as u64 * 20);
    }
}

#[test]
fn flowsim_works_on_every_family() {
    use dcn_baselines::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let topos: Vec<Box<dyn Topology>> = vec![
        Box::new(Abccc::new(AbcccParams::new(3, 1, 2).unwrap()).unwrap()),
        Box::new(Bccc::new(BcccParams::new(3, 1).unwrap()).unwrap()),
        Box::new(BCube::new(BCubeParams::new(3, 1).unwrap()).unwrap()),
        Box::new(DCell::new(DCellParams::new(3, 1).unwrap()).unwrap()),
        Box::new(FatTree::new(FatTreeParams::new(4).unwrap()).unwrap()),
        Box::new(Hypercube::new(HypercubeParams::new(3, 2).unwrap()).unwrap()),
    ];
    for topo in &topos {
        let n = topo.network().server_count();
        let pairs = dcn_workloads::traffic::random_permutation(n, &mut rng);
        let report = FlowSim::new(topo.as_ref()).run(&pairs).expect("run");
        assert!(report.min_rate > 0.0, "{}", topo.name());
        assert_eq!(report.flows, n, "{}", topo.name());
    }
}
