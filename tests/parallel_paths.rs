//! Property tests for the parallel-path construction and its agreement
//! with the exact max-flow disjoint-path count.

use abccc::{parallel, routing, Abccc, AbcccParams, ServerAddr};
use netgraph::{NodeId, Topology};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn params_strategy() -> impl Strategy<Value = AbcccParams> {
    (2u32..=3, 1u32..=2, 2u32..=4)
        .prop_map(|(n, k, h)| AbcccParams::new(n, k, h).expect("valid"))
        .prop_filter("materializable", |p| p.server_count() <= 300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_routes_are_disjoint_valid_and_bounded(
        p in params_strategy(),
        seed in any::<u64>(),
    ) {
        let topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = NodeId(rng.gen_range(0..p.server_count()) as u32);
        let d = loop {
            let d = NodeId(rng.gen_range(0..p.server_count()) as u32);
            if d != s {
                break d;
            }
        };
        let sa = ServerAddr::from_node_id(&p, s);
        let da = ServerAddr::from_node_id(&p, d);
        let routes = parallel::parallel_routes(&p, sa, da, 16);
        prop_assert!(!routes.is_empty());
        for r in &routes {
            prop_assert!(r.validate(topo.network(), None).is_ok());
            prop_assert_eq!(r.src(), s);
            prop_assert_eq!(r.dst(), d);
        }
        for i in 0..routes.len() {
            for j in (i + 1)..routes.len() {
                prop_assert!(routes[i].is_internally_disjoint_from(&routes[j]));
            }
        }
        // Never more than the exact maximum, and the primary is shortest.
        let exact = netgraph::maxflow::vertex_connectivity_pair(topo.network(), s, d, None);
        prop_assert!(routes.len() as u64 <= exact);
        prop_assert_eq!(
            routing::hops(&routes[0]) as u64,
            routing::distance(&p, sa, da)
        );
    }

    #[test]
    fn label_differing_pairs_have_multiple_paths(
        p in params_strategy(),
        seed in any::<u64>(),
    ) {
        // The BCCC/ABCCC selling point: whenever the cube labels differ,
        // at least two fully disjoint routes exist and are found.
        let _topo = Abccc::new(p).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = u64::from(p.group_size());
        let labels = p.label_space();
        let la = rng.gen_range(0..labels);
        let lb = loop {
            let lb = rng.gen_range(0..labels);
            if lb != la {
                break lb;
            }
        };
        let sa = ServerAddr::from_node_id(&p, NodeId((la * m) as u32));
        let da = ServerAddr::from_node_id(&p, NodeId((lb * m) as u32));
        let routes = parallel::parallel_routes(&p, sa, da, 8);
        prop_assert!(routes.len() >= 2, "only {} paths", routes.len());
    }
}

#[test]
fn exact_connectivity_matches_min_degree_for_far_pairs() {
    // For all-digits-differing pairs the vertex connectivity equals the
    // server degree (h ports, or fewer at ragged positions).
    let p = AbcccParams::new(2, 2, 2).unwrap();
    let topo = Abccc::new(p).unwrap();
    let m = u64::from(p.group_size());
    let s = NodeId(0);
    let far_label = p.label_space() - 1; // all digits differ from 0
    let d = NodeId((far_label * m) as u32);
    let exact = netgraph::maxflow::vertex_connectivity_pair(topo.network(), s, d, None);
    assert_eq!(exact, 2); // h = 2
    let routes = parallel::parallel_routes(
        &p,
        ServerAddr::from_node_id(&p, s),
        ServerAddr::from_node_id(&p, d),
        8,
    );
    assert_eq!(routes.len() as u64, exact);
}
